//! Value-generation strategies (no shrinking).

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`], for boxing.
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// The `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among boxed strategies of one value type.
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// A union of `(weight, strategy)` arms; weights must not all be zero.
    #[must_use]
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof!: all weights zero");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut roll = rng.below(self.total);
        for (w, strat) in &self.arms {
            if roll < u64::from(*w) {
                return strat.generate(rng);
            }
            roll -= u64::from(*w);
        }
        unreachable!("roll bounded by total weight")
    }
}

/// The `any::<T>()` entry point: the full-domain strategy for `T`.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// The full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Uniform over the entire domain of a primitive type.
#[derive(Debug, Clone, Copy)]
pub struct FullRange<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — uniform over all of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> Self::Strategy {
                FullRange(std::marker::PhantomData)
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;
    fn arbitrary() -> Self::Strategy {
        FullRange(std::marker::PhantomData)
    }
}

/// Integer types usable as range-literal strategies (`0u8..16`,
/// `1u64..=8`). A single generic impl per range shape (rather than one
/// impl per type) keeps type inference able to unify untyped literals
/// with the surrounding expression's demanded type.
pub trait RangeValue: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; callers guarantee `lo < hi`.
    fn draw_half_open(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; callers guarantee `lo <= hi`.
    fn draw_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
}

macro_rules! range_value_int {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn draw_half_open(rng: &mut TestRng, lo: $t, hi: $t) -> $t {
                let span = (hi as i128).wrapping_sub(lo as i128) as u64;
                ((lo as i128) + rng.below(span) as i128) as $t
            }
            fn draw_inclusive(rng: &mut TestRng, lo: $t, hi: $t) -> $t {
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                ((lo as i128) + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
range_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(self.start < self.end, "strategy range is empty");
        T::draw_half_open(rng, self.start, self.end)
    }
}

impl<T: RangeValue> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "strategy range is empty");
        T::draw_inclusive(rng, lo, hi)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::deterministic("ranges_and_maps_compose");
        let s = (0u8..16).prop_map(|v| v * 2);
        for _ in 0..1000 {
            let v = s.generate(&mut rng);
            assert!(v < 32 && v % 2 == 0);
        }
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = TestRng::deterministic("union_respects_weights");
        let s = Union::new(vec![(9, Just(true).boxed()), (1, Just(false).boxed())]);
        let trues = (0..10_000).filter(|_| s.generate(&mut rng)).count();
        assert!((8_500..9_500).contains(&trues), "trues = {trues}");
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = TestRng::deterministic("inclusive_range_hits_endpoints");
        let s = 1u64..=3;
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
