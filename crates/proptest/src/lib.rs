//! Offline drop-in subset of [`proptest`](https://docs.rs/proptest).
//!
//! The build container cannot reach crates.io, so this local crate
//! re-implements the slice of proptest's API that the workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert*` / [`prop_assume!`],
//! [`prop_oneof!`], `Just`, `any`, range and tuple strategies,
//! `prop::collection::vec`, `prop::sample::select`, and
//! [`ProptestConfig`](test_runner::ProptestConfig)'s `cases` knob.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via `Debug` where
//!   available in the assertion message) and the RNG seed, but is not
//!   minimized.
//! * **Derandomized by default.** Each test function derives its RNG seed
//!   from its own name, so runs are reproducible; set `PROPTEST_SEED` to
//!   explore a different stream.
//! * Strategies are sampled independently per case; there is no rejection
//!   budget beyond a generous global cap on [`prop_assume!`] rejections.

#![forbid(unsafe_code)]

pub mod strategy;

pub mod test_runner {
    //! Runner configuration and the error type `prop_assert*` produce.

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; draw a fresh case.
        Reject,
        /// A `prop_assert*` failed with this message.
        Fail(String),
    }

    /// Runner configuration (subset: only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// The runner's RNG (SplitMix64 over a name-derived seed).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A deterministic RNG for the named test, overridable with the
        /// `PROPTEST_SEED` environment variable.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            let base: u64 = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0x5EED_5EED_5EED_5EED);
            // FNV-1a over the test name, mixed with the base seed.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h ^ base }
        }

        /// The next 64 uniform bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw below `span` (> 0).
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }
    }
}

pub mod collection {
    //! `prop::collection` subset: the [`vec()`] combinator and [`SizeRange`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A collection length specification, convertible from `usize` and
    /// half-open/inclusive `usize` ranges (mirrors upstream so bare range
    /// literals like `1..50` infer as `usize`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "vec: empty length range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "vec: empty length range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy producing `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// `prop::collection::vec(element, len)` — `len` is a `usize`, a
    /// `usize` range, or an inclusive `usize` range.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, len: len.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.hi_inclusive - self.len.lo) as u64 + 1;
            let n = self.len.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! `prop::sample` subset: the [`select`] combinator.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// `prop::sample::select(options)` — uniform choice from a non-empty
    /// `Vec`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: empty choice list");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop` path alias (`prop::collection::vec`, `prop::sample::select`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

// ------------------------------------------------------------------ macros

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$attr:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected <= 64 * config.cases + 1024,
                                "proptest {}: too many prop_assume! rejections \
                                 ({} rejected before {} cases passed)",
                                stringify!($name), rejected, passed
                            );
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {}: {}\n\
                                 (no shrinking in the offline engine; \
                                 rerun with PROPTEST_SEED to vary the stream)",
                                stringify!($name), passed, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional trailing format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "{} ({:?} vs {:?})", format!($($fmt)+), a, b);
    }};
}

/// `prop_assert_ne!(a, b)` with optional trailing format message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "{} (both {:?})", format!($($fmt)+), a);
    }};
}

/// Rejects the current case, drawing a fresh one (bounded by the runner).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Weighted or unweighted union of strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
