//! Offline drop-in subset of the `rand` crate.
//!
//! The container this workspace builds in has no access to crates.io, so
//! this local crate provides exactly the API surface the workspace uses —
//! `rand::rngs::StdRng`, [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen_range` / `gen_bool` / `gen` — backed by a SplitMix64
//! generator. The random *streams* differ from upstream `rand`'s ChaCha12
//! `StdRng`, which is fine for every use in this repo (seeded workload
//! synthesis and differential-test program generation); nothing depends on
//! the exact upstream byte stream.
//!
//! SplitMix64 is Sebastiano Vigna's public-domain mixer; it passes BigCrush
//! on its 64-bit output and is more than adequate for statistical workload
//! generation (it is *not* cryptographic, and neither is this crate's use).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable from the "standard" distribution (`rng.gen::<T>()`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over sub-ranges of their domain.
///
/// Mirrors upstream's `SampleUniform`; crucially, [`SampleRange`] is then
/// implemented *generically* over `T: SampleUniform` (one blanket impl per
/// range shape, as upstream does), so type inference can unify an untyped
/// range literal like `0..6` with a `usize` demanded by the surrounding
/// expression (e.g. slice indexing).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; callers guarantee `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Uniform draw from `[0, span)` by widening multiply (Lemire-style; the
/// tiny modulo bias of the plain multiply is irrelevant here).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128).wrapping_sub(lo as i128) as u64;
                let off = uniform_below(rng, span);
                ((lo as i128) + off as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Full-domain 64-bit range: every word is valid.
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span as u64);
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        lo + f64::sample_standard(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        // For continuous draws the closed/half-open distinction is moot.
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// The user-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }

    /// Draws from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Vigna, public domain).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-4096i32..4096);
            assert!((-4096..4096).contains(&v));
            let w = rng.gen_range(1u64..=8);
            assert!((1..=8).contains(&w));
            let u = rng.gen_range(0usize..13);
            assert!(u < 13);
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
