//! The mini program IR the instrumentation passes operate on.

use specmpk_isa::{AluOp, BranchCond};

/// A local variable; each function may use up to [`MAX_VARS`] of them
/// (they map to callee-scratch registers — no spilling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub u8);

/// Maximum local variables per function.
pub const MAX_VARS: usize = 6;

/// An arithmetic expression over variables and constants.
///
/// The code generator evaluates expressions with a small temporary-register
/// stack; depth is bounded by construction in the synthesizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A constant.
    Const(i64),
    /// A variable read.
    Var(Var),
    /// A binary ALU operation.
    BinOp(AluOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Expression tree depth (1 for leaves).
    #[must_use]
    pub fn depth(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 1,
            Expr::BinOp(_, a, b) => 1 + a.depth().max(b.depth()),
        }
    }
}

/// One IR statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `var := expr`.
    Assign(Var, Expr),
    /// `var := array[index & mask]` (the generator masks indices so every
    /// access stays in bounds — arrays are power-of-two sized).
    Load {
        /// Destination variable.
        dst: Var,
        /// Index into [`Module::arrays`].
        array: usize,
        /// Byte-index expression (masked by the code generator).
        index: Expr,
    },
    /// `array[index & mask] := value`.
    Store {
        /// Index into [`Module::arrays`].
        array: usize,
        /// Byte-index expression.
        index: Expr,
        /// Stored value.
        value: Expr,
    },
    /// A counted loop with a compile-time trip count.
    Loop {
        /// Trip count (≥ 1).
        count: u32,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A data-dependent two-way branch.
    If {
        /// Comparison.
        cond: BranchCond,
        /// Left operand.
        lhs: Var,
        /// Right operand.
        rhs: Var,
        /// Taken-side statements.
        then_body: Vec<Stmt>,
        /// Fall-through statements.
        else_body: Vec<Stmt>,
    },
    /// A direct call to another function in the module.
    Call(usize),
    /// An indirect call through function-pointer-table slot `slot`.
    IndirectCall {
        /// Slot in the function-pointer table.
        slot: usize,
    },
    /// Writes the address of `func` into function-pointer-table slot
    /// `slot` — the operation CPI protects.
    WriteFnPtr {
        /// Slot in the function-pointer table.
        slot: usize,
        /// Target function index.
        func: usize,
    },
}

impl Stmt {
    /// Whether this statement (recursively) contains a loop.
    #[must_use]
    pub fn contains_loop(&self) -> bool {
        match self {
            Stmt::Loop { .. } => true,
            Stmt::If { then_body, else_body, .. } => {
                then_body.iter().any(Stmt::contains_loop)
                    || else_body.iter().any(Stmt::contains_loop)
            }
            _ => false,
        }
    }

    /// Whether this statement (recursively) contains a call of any kind.
    #[must_use]
    pub fn contains_call(&self) -> bool {
        match self {
            Stmt::Call(_) | Stmt::IndirectCall { .. } => true,
            Stmt::Loop { body, .. } => body.iter().any(Stmt::contains_call),
            Stmt::If { then_body, else_body, .. } => {
                then_body.iter().any(Stmt::contains_call)
                    || else_body.iter().any(Stmt::contains_call)
            }
            _ => false,
        }
    }
}

/// A function: a statement list over up to [`MAX_VARS`] locals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Name for diagnostics.
    pub name: String,
    /// Body statements.
    pub body: Vec<Stmt>,
}

impl Function {
    /// Whether the body makes any calls (a *non-leaf* function must spill
    /// its return address to the stack).
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        !self.body.iter().any(Stmt::contains_call)
    }

    /// Whether the body uses loops (loop-counter registers must be saved).
    #[must_use]
    pub fn uses_loops(&self) -> bool {
        self.body.iter().any(Stmt::contains_loop)
    }
}

/// A data array (power-of-two size, so indices can be masked in bounds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Name for diagnostics.
    pub name: String,
    /// Size in bytes (a power of two).
    pub size: u64,
}

impl ArrayDecl {
    /// Creates an array declaration.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a power of two or smaller than 8.
    #[must_use]
    pub fn new(name: &str, size: u64) -> Self {
        assert!(size.is_power_of_two() && size >= 8, "array size {size} invalid");
        ArrayDecl { name: name.to_owned(), size }
    }

    /// The index mask keeping 8-byte accesses in bounds.
    #[must_use]
    pub fn index_mask(&self) -> u64 {
        self.size - 8
    }
}

/// A whole program in IR form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// Functions; index 0 is the entry function.
    pub functions: Vec<Function>,
    /// Data arrays.
    pub arrays: Vec<ArrayDecl>,
    /// Function-pointer-table slots.
    pub fn_ptr_slots: usize,
    /// How many times the driver loop invokes the entry function.
    pub driver_iterations: u32,
}

impl Module {
    /// Validates structural invariants: call targets exist and are
    /// *forward-only* (function `i` may only call `j > i`, guaranteeing
    /// termination), array references exist, fn-ptr slots are in range,
    /// variable indices fit the register pool.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violation.
    pub fn validate(&self) {
        assert!(!self.functions.is_empty(), "module needs an entry function");
        for (i, f) in self.functions.iter().enumerate() {
            self.validate_stmts(i, &f.body);
        }
    }

    fn validate_stmts(&self, fidx: usize, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::Assign(v, e) => {
                    assert!((v.0 as usize) < MAX_VARS, "var {v:?} out of pool");
                    self.validate_expr(e);
                }
                Stmt::Load { dst, array, index } => {
                    assert!((dst.0 as usize) < MAX_VARS);
                    assert!(*array < self.arrays.len(), "array {array} undeclared");
                    self.validate_expr(index);
                }
                Stmt::Store { array, index, value } => {
                    assert!(*array < self.arrays.len(), "array {array} undeclared");
                    self.validate_expr(index);
                    self.validate_expr(value);
                }
                Stmt::Loop { count, body } => {
                    assert!(*count >= 1, "loop with zero trip count");
                    self.validate_stmts(fidx, body);
                }
                Stmt::If { lhs, rhs, then_body, else_body, .. } => {
                    assert!((lhs.0 as usize) < MAX_VARS && (rhs.0 as usize) < MAX_VARS);
                    self.validate_stmts(fidx, then_body);
                    self.validate_stmts(fidx, else_body);
                }
                Stmt::Call(target) => {
                    assert!(*target < self.functions.len(), "call target {target} missing");
                    assert!(*target > fidx, "call from {fidx} to {target} is not forward-only");
                }
                Stmt::IndirectCall { slot } => {
                    assert!(*slot < self.fn_ptr_slots, "fn-ptr slot {slot} out of range");
                }
                Stmt::WriteFnPtr { slot, func } => {
                    assert!(*slot < self.fn_ptr_slots, "fn-ptr slot {slot} out of range");
                    assert!(*func < self.functions.len(), "fn-ptr target {func} missing");
                    assert!(*func > fidx, "fn-ptr from {fidx} to {func} is not forward-only");
                }
            }
        }
    }

    fn validate_expr(&self, e: &Expr) {
        match e {
            Expr::Const(_) => {}
            Expr::Var(v) => assert!((v.0 as usize) < MAX_VARS),
            Expr::BinOp(_, a, b) => {
                assert!(e.depth() <= 4, "expression too deep for the temp stack");
                self.validate_expr(a);
                self.validate_expr(b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u8) -> Var {
        Var(i)
    }

    #[test]
    fn leaf_and_loop_analysis() {
        let f = Function { name: "leaf".into(), body: vec![Stmt::Assign(v(0), Expr::Const(1))] };
        assert!(f.is_leaf());
        assert!(!f.uses_loops());

        let g = Function {
            name: "caller".into(),
            body: vec![Stmt::Loop { count: 3, body: vec![Stmt::Call(1)] }],
        };
        assert!(!g.is_leaf());
        assert!(g.uses_loops());
    }

    #[test]
    fn array_mask_keeps_accesses_in_bounds() {
        let a = ArrayDecl::new("a", 4096);
        assert_eq!(a.index_mask(), 4088);
        assert!(a.index_mask() + 8 <= a.size);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn non_power_of_two_array_rejected() {
        let _ = ArrayDecl::new("bad", 100);
    }

    #[test]
    fn validate_accepts_well_formed_module() {
        let m = Module {
            functions: vec![
                Function { name: "main".into(), body: vec![Stmt::Call(1)] },
                Function {
                    name: "work".into(),
                    body: vec![Stmt::Load { dst: v(0), array: 0, index: Expr::Const(0) }],
                },
            ],
            arrays: vec![ArrayDecl::new("a", 64)],
            fn_ptr_slots: 0,
            driver_iterations: 10,
        };
        m.validate();
    }

    #[test]
    #[should_panic(expected = "forward-only")]
    fn validate_rejects_backward_calls() {
        let m = Module {
            functions: vec![
                Function { name: "a".into(), body: vec![] },
                Function { name: "b".into(), body: vec![Stmt::Call(0)] },
            ],
            arrays: vec![],
            fn_ptr_slots: 0,
            driver_iterations: 1,
        };
        m.validate();
    }

    #[test]
    fn expr_depth_counts_nesting() {
        let e = Expr::BinOp(
            AluOp::Add,
            Box::new(Expr::Var(v(0))),
            Box::new(Expr::BinOp(AluOp::Mul, Box::new(Expr::Const(3)), Box::new(Expr::Var(v(1))))),
        );
        assert_eq!(e.depth(), 3);
    }
}
