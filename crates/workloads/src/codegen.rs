//! Lowers IR modules to simulator programs, applying protection passes.

use specmpk_isa::{
    AluOp, Assembler, BranchCond, DataSegment, MemWidth, Operand, Program, Reg, SegmentPerms,
    INSTR_BYTES,
};
use specmpk_mpk::{Pkey, Pkru};

use crate::ir::{Expr, Module, Stmt, Var};

/// Which protection pass to apply while lowering (paper §VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protection {
    /// No instrumentation — the insecure baseline of Fig. 4.
    None,
    /// Shadow-stack return-address protection \[14\]: non-leaf prologues
    /// unlock the shadow stack, push the return address and re-lock;
    /// epilogues compare and trap on mismatch.
    ShadowStack,
    /// Code-pointer integrity (code-pointer separation) \[33\], \[51\]:
    /// function pointers live in a write-locked safe region; every pointer
    /// write is sandwiched by `WRPKRU` pairs.
    Cpi,
}

/// How instrumentation updates PKRU (paper §V-C6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PkruUpdateStyle {
    /// `li eax, imm; wrpkru` — the value is speculation-independent, the
    /// compiler discipline §IX-B assumes, and no `RDPKRU` is needed.
    #[default]
    LoadImmediate,
    /// glibc `pkey_set` style: `rdpkru; and/or eax, mask; wrpkru`. Under
    /// SpecMPK the `RDPKRU` serializes against in-flight WRPKRUs (§V-C6),
    /// which the `rdpkru_study` experiment quantifies.
    ReadModifyWrite,
}

/// The pkey coloring the shadow stack.
pub const SHADOW_PKEY: u8 = 1;
/// The pkey coloring the CPI safe region.
pub const SAFE_PKEY: u8 = 2;

/// Memory layout of a generated workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// Text base address.
    pub text_base: u64,
    /// Call-stack segment base (64 KiB).
    pub stack_base: u64,
    /// Shadow-stack segment base (64 KiB, pkey 1).
    pub shadow_base: u64,
    /// Safe-region base (4 KiB, pkey 2) — CPI's pointer table.
    pub safe_base: u64,
    /// Unprotected function-pointer table base (None/SS schemes).
    pub plain_table_base: u64,
    /// Base address of each IR array.
    pub array_bases: Vec<u64>,
}

impl Layout {
    fn for_module(module: &Module) -> Self {
        let mut array_bases = Vec::new();
        let mut cursor: u64 = 0x1000_0000;
        for a in &module.arrays {
            array_bases.push(cursor);
            cursor += a.size.max(4096);
        }
        Layout {
            text_base: 0x1000,
            stack_base: 0x7F00_0000,
            shadow_base: 0x6000_0000,
            safe_base: 0x5000_0000,
            plain_table_base: 0x4000_0000,
            array_bases,
        }
    }

    /// Address of function-pointer slot `slot` under `protection`.
    #[must_use]
    pub fn fn_ptr_slot(&self, protection: Protection, slot: usize) -> u64 {
        let base =
            if protection == Protection::Cpi { self.safe_base } else { self.plain_table_base };
        base + slot as u64 * 8
    }
}

/// A contiguous PC range of the generated text with a human-readable
/// name — the side map `specmpk-report profile` uses to fold per-PC
/// profiler samples into named workload regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Region name: `"driver"`, an IR function name, or `"trap"`.
    pub name: String,
    /// First instruction address (inclusive).
    pub start: u64,
    /// One past the last instruction address (exclusive).
    pub end: u64,
}

impl Region {
    /// Whether `pc` falls inside this region.
    #[must_use]
    pub fn contains(&self, pc: u64) -> bool {
        self.start <= pc && pc < self.end
    }
}

/// Variable registers, in [`Var`] index order.
const VAR_REGS: [Reg; 6] = [Reg::S0, Reg::S1, Reg::S2, Reg::A0, Reg::A1, Reg::A2];
/// Expression temporaries (stack indexed by depth).
const TEMP_REGS: [Reg; 4] = [Reg::T0, Reg::T1, Reg::T2, Reg::T3];
/// Address scratch.
const ADDR_REG: Reg = Reg::T4;
/// Loop counters by nesting level.
const LOOP_REGS: [Reg; 2] = [Reg::A3, Reg::S3];

/// Lowers one [`Module`] to a [`Program`] with a chosen [`Protection`].
///
/// # Examples
///
/// ```
/// use specmpk_workloads::{CodeGenerator, Protection};
/// use specmpk_workloads::ir::{ArrayDecl, Expr, Function, Module, Stmt, Var};
///
/// let module = Module {
///     functions: vec![Function {
///         name: "main".into(),
///         body: vec![Stmt::Assign(Var(0), Expr::Const(1))],
///     }],
///     arrays: vec![ArrayDecl::new("a", 64)],
///     fn_ptr_slots: 0,
///     driver_iterations: 3,
/// };
/// let program = CodeGenerator::new(&module, Protection::None).generate();
/// assert!(program.segment("stack").is_some());
/// ```
#[derive(Debug)]
pub struct CodeGenerator<'m> {
    module: &'m Module,
    protection: Protection,
    layout: Layout,
    pkru_locked: Pkru,
    pkru_unlocked: Pkru,
    pkru_style: PkruUpdateStyle,
}

impl<'m> CodeGenerator<'m> {
    /// Creates a generator for `module` with the given protection pass.
    ///
    /// # Panics
    ///
    /// Panics if the module fails [`Module::validate`].
    #[must_use]
    pub fn new(module: &'m Module, protection: Protection) -> Self {
        module.validate();
        let layout = Layout::for_module(module);
        let (locked, unlocked) = match protection {
            Protection::None => (Pkru::ALL_ACCESS, Pkru::ALL_ACCESS),
            Protection::ShadowStack => {
                let k = Pkey::new(SHADOW_PKEY).expect("static pkey");
                (Pkru::ALL_ACCESS.with_write_disabled(k, true), Pkru::ALL_ACCESS)
            }
            Protection::Cpi => {
                let k = Pkey::new(SAFE_PKEY).expect("static pkey");
                (Pkru::ALL_ACCESS.with_write_disabled(k, true), Pkru::ALL_ACCESS)
            }
        };
        CodeGenerator {
            module,
            protection,
            layout,
            pkru_locked: locked,
            pkru_unlocked: unlocked,
            pkru_style: PkruUpdateStyle::LoadImmediate,
        }
    }

    /// Selects how instrumentation updates PKRU (default: load-immediate).
    #[must_use]
    pub fn with_pkru_style(mut self, style: PkruUpdateStyle) -> Self {
        self.pkru_style = style;
        self
    }

    /// The bits that differ between the locked and unlocked PKRU values —
    /// what a read-modify-write sequence sets (lock) or clears (unlock).
    fn lock_mask(&self) -> u32 {
        self.pkru_locked.bits() ^ self.pkru_unlocked.bits()
    }

    /// Emits the "lock" permission update in the configured style.
    fn emit_lock(&self, asm: &mut Assembler) {
        match self.pkru_style {
            PkruUpdateStyle::LoadImmediate => asm.set_pkru(self.pkru_locked.bits()),
            PkruUpdateStyle::ReadModifyWrite => {
                asm.rdpkru();
                asm.alu(
                    AluOp::Or,
                    specmpk_isa::Reg::EAX,
                    specmpk_isa::Reg::EAX,
                    Operand::Imm(self.lock_mask() as i32),
                );
                asm.wrpkru();
            }
        }
    }

    /// Emits the "unlock" permission update in the configured style.
    fn emit_unlock(&self, asm: &mut Assembler) {
        match self.pkru_style {
            PkruUpdateStyle::LoadImmediate => asm.set_pkru(self.pkru_unlocked.bits()),
            PkruUpdateStyle::ReadModifyWrite => {
                asm.rdpkru();
                asm.alu(
                    AluOp::And,
                    specmpk_isa::Reg::EAX,
                    specmpk_isa::Reg::EAX,
                    Operand::Imm(!(self.lock_mask() as i32)),
                );
                asm.wrpkru();
            }
        }
    }

    /// The memory layout the generated program uses.
    #[must_use]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Generates the program (two passes: the first discovers function
    /// addresses for `li`-materialized function pointers).
    #[must_use]
    pub fn generate(&self) -> Program {
        let first = self.emit(None);
        let addrs = first.0;
        let (_, program) = self.emit(Some(&addrs));
        program
    }

    /// Like [`generate`](Self::generate), but also returns the PC-range →
    /// region-name side map: the driver, each IR function in emission
    /// order, and the trap block, covering the text segment exactly.
    #[must_use]
    pub fn generate_with_regions(&self) -> (Program, Vec<Region>) {
        let first = self.emit(None);
        let addrs = first.0;
        let (addrs, program) = self.emit(Some(&addrs));
        let text_end = self.layout.text_base + program.len() as u64 * INSTR_BYTES;
        // The trap block is the last thing emitted: two instructions.
        let trap_start = text_end - 2 * INSTR_BYTES;
        let mut regions = Vec::with_capacity(self.module.functions.len() + 2);
        regions.push(Region { name: "driver".into(), start: self.layout.text_base, end: addrs[0] });
        for (fidx, func) in self.module.functions.iter().enumerate() {
            let end = addrs.get(fidx + 1).copied().unwrap_or(trap_start);
            regions.push(Region { name: func.name.clone(), start: addrs[fidx], end });
        }
        regions.push(Region { name: "trap".into(), start: trap_start, end: text_end });
        (program, regions)
    }

    fn protected(&self) -> bool {
        self.protection != Protection::None
    }

    #[allow(clippy::too_many_lines)]
    fn emit(&self, func_addrs: Option<&[u64]>) -> (Vec<u64>, Program) {
        let mut asm = Assembler::new(self.layout.text_base);
        let func_labels: Vec<_> =
            (0..self.module.functions.len()).map(|_| asm.fresh_label()).collect();
        let trap = asm.fresh_label();
        let resolve = |f: usize| func_addrs.map_or(0, |a| a[f]);

        // ----- driver -----
        if self.protection == Protection::ShadowStack {
            asm.li(Reg::SSP, self.layout.shadow_base as i64);
        }
        // Initialize every function-pointer slot with the first valid
        // target so an IndirectCall before the first WriteFnPtr is defined.
        if self.module.fn_ptr_slots > 0 {
            let default_target = self.module.functions.len() - 1;
            for slot in 0..self.module.fn_ptr_slots {
                asm.li(ADDR_REG, self.layout.fn_ptr_slot(self.protection, slot) as i64);
                asm.li(TEMP_REGS[0], resolve(default_target) as i64);
                asm.store(TEMP_REGS[0], ADDR_REG, 0, MemWidth::D);
            }
        }
        if self.protected() {
            asm.set_pkru(self.pkru_locked.bits());
        }
        // Zero the variable registers so runs are deterministic.
        for r in VAR_REGS {
            asm.li(r, 0);
        }
        let drive_top = asm.fresh_label();
        asm.li(Reg::FP, i64::from(self.module.driver_iterations));
        asm.bind(drive_top).expect("fresh");
        asm.call(func_labels[0]);
        asm.addi(Reg::FP, Reg::FP, -1);
        asm.branch(BranchCond::Ne, Reg::FP, Reg::ZERO, drive_top);
        asm.halt();

        // ----- functions -----
        let mut addrs = vec![0u64; self.module.functions.len()];
        for (fidx, func) in self.module.functions.iter().enumerate() {
            asm.bind(func_labels[fidx]).expect("fresh");
            addrs[fidx] = asm.address_of(func_labels[fidx]).expect("just bound");
            let leaf = func.is_leaf();
            let loops = func.uses_loops();
            // Prologue: spill RA (non-leaf) and loop counters.
            if !leaf || loops {
                asm.addi(Reg::SP, Reg::SP, -32);
                if !leaf {
                    asm.store(Reg::RA, Reg::SP, 24, MemWidth::D);
                }
                if loops {
                    asm.store(LOOP_REGS[0], Reg::SP, 16, MemWidth::D);
                    asm.store(LOOP_REGS[1], Reg::SP, 8, MemWidth::D);
                }
            }
            // Shadow-stack push: every prologue copies the return address
            // into the locked shadow stack (the scheme of [14] instruments
            // all functions).
            if self.protection == Protection::ShadowStack {
                self.emit_unlock(&mut asm);
                asm.store(Reg::RA, Reg::SSP, 0, MemWidth::D);
                asm.addi(Reg::SSP, Reg::SSP, 8);
                self.emit_lock(&mut asm);
            }
            // Body.
            for stmt in &func.body {
                self.emit_stmt(&mut asm, stmt, &func_labels, 0, func_addrs);
            }
            // Epilogue.
            if !leaf {
                asm.load(Reg::RA, Reg::SP, 24, MemWidth::D);
            }
            if self.protection == Protection::ShadowStack {
                asm.addi(Reg::SSP, Reg::SSP, -8);
                asm.load(ADDR_REG, Reg::SSP, 0, MemWidth::D);
                asm.branch(BranchCond::Ne, ADDR_REG, Reg::RA, trap);
            }
            if !leaf || loops {
                if loops {
                    asm.load(LOOP_REGS[0], Reg::SP, 16, MemWidth::D);
                    asm.load(LOOP_REGS[1], Reg::SP, 8, MemWidth::D);
                }
                asm.addi(Reg::SP, Reg::SP, 32);
            }
            asm.ret();
        }

        // ----- trap: a shadow-stack mismatch crashes the process -----
        asm.bind(trap).expect("fresh");
        asm.li(ADDR_REG, 0);
        asm.store(ADDR_REG, ADDR_REG, 0, MemWidth::D); // page fault at 0x0

        let text = asm.assemble().expect("all labels bound");
        let mut program = Program::new(self.layout.text_base, text);

        // ----- data segments -----
        program.add_segment(DataSegment::zeroed(
            "stack",
            self.layout.stack_base,
            64 * 1024,
            Pkey::DEFAULT,
        ));
        if self.protection == Protection::ShadowStack {
            program.add_segment(DataSegment::zeroed(
                "shadow_stack",
                self.layout.shadow_base,
                64 * 1024,
                Pkey::new(SHADOW_PKEY).expect("static"),
            ));
        }
        match self.protection {
            Protection::Cpi => program.add_segment(DataSegment::zeroed(
                "safe_region",
                self.layout.safe_base,
                4096,
                Pkey::new(SAFE_PKEY).expect("static"),
            )),
            _ if self.module.fn_ptr_slots > 0 => program.add_segment(DataSegment::zeroed(
                "fn_ptr_table",
                self.layout.plain_table_base,
                4096,
                Pkey::DEFAULT,
            )),
            _ => {}
        }
        for (i, a) in self.module.arrays.iter().enumerate() {
            // Deterministic pseudo-random initial contents so
            // data-dependent branches have interesting behaviour.
            let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ (i as u64) << 32 | a.size;
            let init: Vec<u8> = (0..a.size)
                .map(|_| {
                    state =
                        state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (state >> 33) as u8
                })
                .collect();
            program.add_segment(DataSegment {
                base: self.layout.array_bases[i],
                size: a.size,
                init,
                pkey: Pkey::DEFAULT,
                perms: SegmentPerms::RW,
                name: a.name.clone(),
            });
        }
        (addrs, program)
    }

    fn emit_stmt(
        &self,
        asm: &mut Assembler,
        stmt: &Stmt,
        func_labels: &[specmpk_isa::Label],
        loop_level: usize,
        func_addrs: Option<&[u64]>,
    ) {
        let resolve = |f: usize| func_addrs.map_or(0, |a| a[f]);
        match stmt {
            Stmt::Assign(v, e) => {
                self.emit_expr(asm, e, 0);
                asm.alu(AluOp::Add, var_reg(*v), TEMP_REGS[0], Operand::Imm(0));
            }
            Stmt::Load { dst, array, index } => {
                self.emit_array_addr(asm, *array, index);
                asm.load(var_reg(*dst), ADDR_REG, 0, MemWidth::D);
            }
            Stmt::Store { array, index, value } => {
                self.emit_expr(asm, value, 1); // value into T1
                self.emit_array_addr(asm, *array, index); // address into T4 (uses T0)
                asm.store(TEMP_REGS[1], ADDR_REG, 0, MemWidth::D);
            }
            Stmt::Loop { count, body } => {
                assert!(loop_level < LOOP_REGS.len(), "loop nesting exceeds 2");
                let ctr = LOOP_REGS[loop_level];
                let top = asm.fresh_label();
                asm.li(ctr, i64::from(*count));
                asm.bind(top).expect("fresh");
                for s in body {
                    self.emit_stmt(asm, s, func_labels, loop_level + 1, func_addrs);
                }
                asm.addi(ctr, ctr, -1);
                asm.branch(BranchCond::Ne, ctr, Reg::ZERO, top);
            }
            Stmt::If { cond, lhs, rhs, then_body, else_body } => {
                let then_l = asm.fresh_label();
                let end_l = asm.fresh_label();
                asm.branch(*cond, var_reg(*lhs), var_reg(*rhs), then_l);
                for s in else_body {
                    self.emit_stmt(asm, s, func_labels, loop_level, func_addrs);
                }
                asm.jump(end_l);
                asm.bind(then_l).expect("fresh");
                for s in then_body {
                    self.emit_stmt(asm, s, func_labels, loop_level, func_addrs);
                }
                asm.bind(end_l).expect("fresh");
            }
            Stmt::Call(f) => asm.call(func_labels[*f]),
            Stmt::IndirectCall { slot } => {
                asm.li(ADDR_REG, self.layout.fn_ptr_slot(self.protection, *slot) as i64);
                asm.load(ADDR_REG, ADDR_REG, 0, MemWidth::D);
                asm.jalr(Reg::RA, ADDR_REG);
            }
            Stmt::WriteFnPtr { slot, func } => {
                if self.protection == Protection::Cpi {
                    self.emit_unlock(asm);
                }
                asm.li(ADDR_REG, self.layout.fn_ptr_slot(self.protection, *slot) as i64);
                asm.li(TEMP_REGS[0], resolve(*func) as i64);
                asm.store(TEMP_REGS[0], ADDR_REG, 0, MemWidth::D);
                if self.protection == Protection::Cpi {
                    self.emit_lock(asm);
                }
            }
        }
    }

    /// Evaluates `e` into `TEMP_REGS[slot]` using temporaries above `slot`.
    fn emit_expr(&self, asm: &mut Assembler, e: &Expr, slot: usize) {
        assert!(slot < TEMP_REGS.len(), "expression too deep");
        let dst = TEMP_REGS[slot];
        match e {
            Expr::Const(c) => asm.li(dst, *c),
            Expr::Var(v) => asm.alu(AluOp::Add, dst, var_reg(*v), Operand::Imm(0)),
            Expr::BinOp(op, a, b) => {
                self.emit_expr(asm, a, slot);
                self.emit_expr(asm, b, slot + 1);
                asm.alu(*op, dst, dst, Operand::Reg(TEMP_REGS[slot + 1]));
            }
        }
    }

    /// Leaves the in-bounds element address in `ADDR_REG` (clobbers T0).
    fn emit_array_addr(&self, asm: &mut Assembler, array: usize, index: &Expr) {
        let decl = &self.module.arrays[array];
        self.emit_expr(asm, index, 0);
        asm.alu(AluOp::And, TEMP_REGS[0], TEMP_REGS[0], Operand::Imm(decl.index_mask() as i32));
        asm.li(ADDR_REG, self.layout.array_bases[array] as i64);
        asm.alu(AluOp::Add, ADDR_REG, ADDR_REG, Operand::Reg(TEMP_REGS[0]));
    }
}

fn var_reg(v: Var) -> Reg {
    VAR_REGS[v.0 as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ArrayDecl, Function};
    use specmpk_isa::Instr;

    fn tiny_module(fn_ptr_slots: usize) -> Module {
        Module {
            functions: vec![
                Function {
                    name: "main".into(),
                    body: vec![
                        Stmt::Assign(Var(0), Expr::Const(7)),
                        Stmt::Call(1),
                        Stmt::Store { array: 0, index: Expr::Const(0), value: Expr::Var(Var(0)) },
                    ],
                },
                Function {
                    name: "leaf".into(),
                    body: vec![Stmt::Load { dst: Var(1), array: 0, index: Expr::Const(8) }],
                },
            ],
            arrays: vec![ArrayDecl::new("data", 4096)],
            fn_ptr_slots,
            driver_iterations: 2,
        }
    }

    fn count_wrpkru(p: &Program) -> usize {
        p.text().iter().filter(|i| matches!(i, Instr::Wrpkru)).count()
    }

    #[test]
    fn unprotected_module_has_no_wrpkru() {
        let m = tiny_module(0);
        let p = CodeGenerator::new(&m, Protection::None).generate();
        assert_eq!(count_wrpkru(&p), 0);
        assert!(p.segment("shadow_stack").is_none());
        assert!(p.segment("stack").is_some());
    }

    #[test]
    fn shadow_stack_instruments_every_function() {
        let m = tiny_module(0);
        let p = CodeGenerator::new(&m, Protection::ShadowStack).generate();
        // 1 initial lock + (unlock+lock) per function prologue (main and
        // the leaf) = 5 WRPKRUs.
        assert_eq!(count_wrpkru(&p), 5);
        assert!(p.segment("shadow_stack").is_some());
        assert_eq!(p.segment("shadow_stack").unwrap().pkey, Pkey::new(SHADOW_PKEY).unwrap());
    }

    #[test]
    fn cpi_instruments_pointer_writes_only() {
        let mut m = tiny_module(2);
        m.functions[0].body.push(Stmt::WriteFnPtr { slot: 0, func: 1 });
        m.functions[0].body.push(Stmt::IndirectCall { slot: 0 });
        let p = CodeGenerator::new(&m, Protection::Cpi).generate();
        // 1 initial lock + (unlock+lock) around the pointer write.
        assert_eq!(count_wrpkru(&p), 3);
        assert!(p.segment("safe_region").is_some());
    }

    #[test]
    fn two_pass_function_addresses_are_consistent() {
        let mut m = tiny_module(1);
        m.functions[0].body.push(Stmt::WriteFnPtr { slot: 0, func: 1 });
        let generator = CodeGenerator::new(&m, Protection::None);
        let p1 = generator.generate();
        let p2 = generator.generate();
        assert_eq!(p1, p2, "generation must be deterministic");
    }

    #[test]
    fn region_map_tiles_the_text_segment_exactly() {
        let mut m = tiny_module(1);
        m.functions[0].body.push(Stmt::WriteFnPtr { slot: 0, func: 1 });
        let generator = CodeGenerator::new(&m, Protection::ShadowStack);
        let (program, regions) = generator.generate_with_regions();
        assert_eq!(program, generator.generate(), "region pass must not perturb codegen");
        assert_eq!(regions.first().unwrap().name, "driver");
        assert_eq!(regions.last().unwrap().name, "trap");
        let names: Vec<&str> = regions.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["driver", "main", "leaf", "trap"]);
        // Contiguous, ascending, and covering [text_base, text_end).
        assert_eq!(regions[0].start, program.text_base());
        for w in regions.windows(2) {
            assert_eq!(w[0].end, w[1].start, "regions must tile without gaps");
            assert!(w[0].start < w[0].end);
        }
        let text_end = program.text_base() + program.len() as u64 * specmpk_isa::INSTR_BYTES;
        assert_eq!(regions.last().unwrap().end, text_end);
        // Every PC resolves to exactly one region.
        let pc = regions[1].start;
        assert_eq!(regions.iter().filter(|r| r.contains(pc)).count(), 1);
    }

    #[test]
    fn arrays_get_deterministic_nonzero_contents() {
        let m = tiny_module(0);
        let p = CodeGenerator::new(&m, Protection::None).generate();
        let seg = p.segment("data").unwrap();
        assert_eq!(seg.init.len(), 4096);
        assert!(seg.init.iter().any(|&b| b != 0));
    }
}
