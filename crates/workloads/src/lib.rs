//! Workload generation for the SpecMPK evaluation.
//!
//! The paper evaluates SPEC CPU2017 workloads compiled with **shadow-stack
//! (SS)** protection and SPEC CPU2006 workloads compiled with **code-pointer
//! integrity (CPI)** protection (§VI-B). SPEC is proprietary and the
//! modified compilers of \[14\]/\[51\] target x86, so this crate rebuilds the
//! pipeline-relevant part of that toolchain from scratch (DESIGN.md §2):
//!
//! 1. a tiny structured **program IR** ([`ir`]) with functions, loops,
//!    data-dependent branches, array traffic and function pointers;
//! 2. a **code generator** ([`codegen`]) that lowers the IR to the
//!    simulator ISA and applies one of three *protection passes*:
//!    * [`Protection::None`] — the insecure baseline,
//!    * [`Protection::ShadowStack`] — every function prologue enables
//!      write access to the pkey-colored shadow stack, pushes the return
//!      address, and re-locks it; the epilogue compares the shadow copy
//!      against the stack copy and traps on mismatch (the scheme of \[14\]),
//!    * [`Protection::Cpi`] — function pointers live in a read-only safe
//!      region; every pointer write is sandwiched by enable/disable
//!      `WRPKRU` pairs (the code-pointer-separation variant of \[33\]);
//! 3. a **workload synthesizer** ([`synth`]) that generates IR modules
//!    from seeded, per-benchmark [`profiles`](profile) calibrated to span
//!    the paper's WRPKRU-density range (Fig. 10: ~0.1 to ~30 WRPKRU per
//!    kilo-instruction).
//!
//! # Examples
//!
//! ```
//! use specmpk_workloads::{standard_suite, Protection, Scheme};
//!
//! let suite = standard_suite();
//! assert!(suite.iter().any(|w| w.scheme == Scheme::ShadowStack));
//! let workload = &suite[0];
//! let program = workload.build(Protection::ShadowStack);
//! assert!(program.len() > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codegen;
pub mod ir;
pub mod profile;
pub mod synth;

pub use codegen::{CodeGenerator, Layout, PkruUpdateStyle, Protection, Region};
pub use ir::{ArrayDecl, Expr, Function, Module, Stmt, Var};
pub use profile::{
    bench_profiles, standard_profiles, standard_suite, Scheme, Workload, WorkloadProfile,
};
