//! Seeded synthesis of IR modules from workload profiles.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use specmpk_isa::{AluOp, BranchCond};

use crate::ir::{ArrayDecl, Expr, Function, Module, Stmt, Var, MAX_VARS};
use crate::profile::WorkloadProfile;

/// How many trailing functions are pure-leaf "targets" for function
/// pointers. Indirect calls can only ever reach these, which (with
/// forward-only direct calls) guarantees termination.
const FN_PTR_TARGETS: usize = 2;

struct Synth<'p> {
    rng: StdRng,
    profile: &'p WorkloadProfile,
    num_funcs: usize,
    num_arrays: usize,
    fn_ptr_slots: usize,
}

/// Synthesizes a deterministic IR module from `profile`.
///
/// Structure: `main` (function 0) plus `num_helpers` helpers; the last
/// `FN_PTR_TARGETS` (= 2) helpers are call-free leaves that function pointers
/// may target. Direct calls are forward-only, loops have compile-time trip
/// counts, and every array index is masked in bounds by the code
/// generator — so every synthesized program terminates and never faults.
///
/// # Examples
///
/// ```
/// use specmpk_workloads::profile::standard_profiles;
/// use specmpk_workloads::synth::synthesize;
///
/// let module = synthesize(&standard_profiles()[0]);
/// assert!(module.functions.len() > 2);
/// ```
#[must_use]
pub fn synthesize(profile: &WorkloadProfile) -> Module {
    let num_funcs = 1 + profile.num_helpers.max(FN_PTR_TARGETS);
    let use_fn_ptrs = profile.fn_ptr_write_rate > 0.0 || profile.indirect_call_rate > 0.0;
    let mut s = Synth {
        rng: StdRng::seed_from_u64(profile.seed),
        profile,
        num_funcs,
        num_arrays: 0,
        fn_ptr_slots: if use_fn_ptrs { 4 } else { 0 },
    };

    // Split the working set across 1–4 power-of-two arrays.
    let mut arrays = Vec::new();
    let total_bytes = (profile.array_kb * 1024).next_power_of_two();
    let pieces = match profile.array_kb {
        0..=8 => 1,
        9..=128 => 2,
        _ => 4,
    };
    for i in 0..pieces {
        arrays.push(ArrayDecl::new(&format!("array{i}"), (total_bytes / pieces as u64).max(64)));
    }
    s.num_arrays = arrays.len();

    let functions: Vec<Function> = (0..num_funcs).map(|i| s.function(i)).collect();
    let module = Module {
        functions,
        arrays,
        fn_ptr_slots: s.fn_ptr_slots,
        driver_iterations: profile.driver_iterations,
    };
    module.validate();
    module
}

impl Synth<'_> {
    fn var(&mut self) -> Var {
        Var(self.rng.gen_range(0..MAX_VARS as u8))
    }

    fn array(&mut self) -> usize {
        self.rng.gen_range(0..self.num_arrays)
    }

    /// Index of the first pure-leaf fn-ptr target function.
    fn target_start(&self) -> usize {
        self.num_funcs - FN_PTR_TARGETS
    }

    /// A small expression; an LCG step keeps values churning so indices
    /// and branch operands look pseudo-random at run time.
    fn expr(&mut self, depth: usize) -> Expr {
        if depth >= 2 || self.rng.gen_bool(0.4) {
            if self.rng.gen_bool(0.5) {
                Expr::Var(self.var())
            } else {
                Expr::Const(self.rng.gen_range(-4096..4096))
            }
        } else if depth == 0 && self.rng.gen_bool(0.3) {
            // LCG churn: v * 1103515245 + 12345.
            Expr::BinOp(
                AluOp::Add,
                Box::new(Expr::BinOp(
                    AluOp::Mul,
                    Box::new(Expr::Var(self.var())),
                    Box::new(Expr::Const(1_103_515_245)),
                )),
                Box::new(Expr::Const(12_345)),
            )
        } else {
            let ops = [AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::And, AluOp::Or, AluOp::Mul];
            let op = ops[self.rng.gen_range(0..ops.len())];
            Expr::BinOp(op, Box::new(self.expr(depth + 1)), Box::new(self.expr(depth + 1)))
        }
    }

    fn cond(&mut self) -> BranchCond {
        BranchCond::all()[self.rng.gen_range(0..6)]
    }

    /// One statement. `fidx` bounds call targets (forward-only); `in_loop`
    /// gates call emission (calls in loop bodies dominate dynamic call
    /// density); `if_depth` caps conditional nesting so statement trees
    /// stay finite (an unbounded recursive `If` would be a supercritical
    /// branching process for call-dense profiles).
    fn stmt(&mut self, fidx: usize, in_loop: bool, if_depth: usize) -> Stmt {
        let p = self.profile;
        let can_call = fidx + 1 < self.target_start();
        let can_branch = if_depth < 2;
        let weights = [
            // Call.
            if can_call {
                if in_loop {
                    p.call_rate
                } else {
                    p.call_rate * 0.25
                }
            } else {
                0.0
            },
            // Indirect call.
            if self.fn_ptr_slots > 0 { p.indirect_call_rate } else { 0.0 },
            // Function-pointer write.
            if self.fn_ptr_slots > 0 && fidx < self.target_start() {
                p.fn_ptr_write_rate
            } else {
                0.0
            },
            // Data-dependent branch.
            if can_branch { p.branch_rate } else { 0.0 },
            // Memory.
            p.mem_rate,
            // Plain compute.
            0.25,
        ];
        let total: f64 = weights.iter().sum();
        let mut roll: f64 = self.rng.gen::<f64>() * total;
        let mut choice = weights.len() - 1;
        for (i, w) in weights.iter().enumerate() {
            if roll < *w {
                choice = i;
                break;
            }
            roll -= w;
        }
        match choice {
            0 => Stmt::Call(self.rng.gen_range(fidx + 1..self.num_funcs)),
            1 => Stmt::IndirectCall { slot: self.rng.gen_range(0..self.fn_ptr_slots) },
            2 => Stmt::WriteFnPtr {
                slot: self.rng.gen_range(0..self.fn_ptr_slots),
                func: self.rng.gen_range(self.target_start()..self.num_funcs),
            },
            3 => {
                let then_body = vec![self.stmt(fidx, in_loop, if_depth + 1)];
                let else_body = if self.rng.gen_bool(0.5) {
                    vec![self.stmt(fidx, in_loop, if_depth + 1)]
                } else {
                    Vec::new()
                };
                Stmt::If {
                    cond: self.cond(),
                    lhs: self.var(),
                    rhs: self.var(),
                    then_body,
                    else_body,
                }
            }
            4 => {
                let index = self.expr(1);
                if self.rng.gen_bool(0.5) {
                    Stmt::Load { dst: self.var(), array: self.array(), index }
                } else {
                    Stmt::Store { array: self.array(), index, value: self.expr(1) }
                }
            }
            _ => Stmt::Assign(self.var(), self.expr(0)),
        }
    }

    /// Stochastic rounding: `rate * n` with the fraction resolved by a
    /// Bernoulli draw, so even tiny rates occasionally contribute.
    fn quota(&mut self, rate: f64, n: usize) -> usize {
        let exact = rate * n as f64;
        let floor = exact.floor();
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let base = floor as usize;
        base + usize::from(self.rng.gen_bool((exact - floor).clamp(0.0, 1.0)))
    }

    fn mem_stmt(&mut self) -> Stmt {
        let index = self.expr(1);
        if self.rng.gen_bool(0.5) {
            Stmt::Load { dst: self.var(), array: self.array(), index }
        } else {
            Stmt::Store { array: self.array(), index, value: self.expr(1) }
        }
    }

    /// Builds a loop body by *composition*: the profile rates are quotas
    /// over the body's statement slots (stochastically rounded), then the
    /// deck is shuffled. This keeps each benchmark's dynamic call /
    /// pointer-write density tightly controlled — the levers behind
    /// Fig. 10's WRPKRU-per-kilo-instruction spread.
    fn loop_body(&mut self, fidx: usize, n: usize) -> Vec<Stmt> {
        let p = *self.profile;
        let can_call = fidx + 1 < self.target_start();
        // Helpers call (and write pointers) far more rarely than `main`:
        // without damping, call chains through nested helper loops amplify
        // the dynamic call density exponentially and the profile rates
        // would lose control of Fig. 10's WRPKRU density.
        let damp = if fidx == 0 { 1.0 } else { 0.1 };
        let mut deck: Vec<Stmt> = Vec::new();
        if can_call {
            for _ in 0..self.quota(p.call_rate * damp, n) {
                deck.push(Stmt::Call(self.rng.gen_range(fidx + 1..self.num_funcs)));
            }
        }
        if self.fn_ptr_slots > 0 {
            for _ in 0..self.quota(p.indirect_call_rate * damp, n) {
                deck.push(Stmt::IndirectCall { slot: self.rng.gen_range(0..self.fn_ptr_slots) });
            }
            if fidx < self.target_start() {
                for _ in 0..self.quota(p.fn_ptr_write_rate * damp, n) {
                    deck.push(Stmt::WriteFnPtr {
                        slot: self.rng.gen_range(0..self.fn_ptr_slots),
                        func: self.rng.gen_range(self.target_start()..self.num_funcs),
                    });
                }
            }
        }
        for _ in 0..self.quota(p.branch_rate, n) {
            let then_body = vec![self.stmt(fidx, true, 1)];
            let else_body =
                if self.rng.gen_bool(0.5) { vec![self.stmt(fidx, true, 1)] } else { Vec::new() };
            deck.push(Stmt::If {
                cond: self.cond(),
                lhs: self.var(),
                rhs: self.var(),
                then_body,
                else_body,
            });
        }
        for _ in 0..self.quota(p.mem_rate, n) {
            let stmt = self.mem_stmt();
            deck.push(stmt);
        }
        while deck.len() < n {
            deck.push(Stmt::Assign(self.var(), self.expr(0)));
        }
        // Fisher–Yates shuffle for a deterministic interleaving.
        for i in (1..deck.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            deck.swap(i, j);
        }
        deck
    }

    fn function(&mut self, fidx: usize) -> Function {
        let p = self.profile;
        let is_target = fidx >= self.target_start();
        let (lo, hi) = p.body_stmts;
        let n = self.rng.gen_range(lo..=hi);
        let mut body = Vec::new();
        if is_target {
            // Pure-leaf targets: straight-line compute + memory only.
            for _ in 0..n {
                let stmt = if self.rng.gen_bool(p.mem_rate) {
                    Stmt::Load { dst: self.var(), array: self.array(), index: self.expr(1) }
                } else {
                    Stmt::Assign(self.var(), self.expr(0))
                };
                body.push(stmt);
            }
        } else {
            // Regular functions: a main loop whose body carries the call /
            // branch / memory mix, plus some straight-line work.
            let iters = self.rng.gen_range(p.loop_iters.0..=p.loop_iters.1);
            let loop_body = self.loop_body(fidx, n);
            let has_call = loop_body.iter().any(|s| matches!(s, Stmt::Call(_)));
            let has_fpw = loop_body.iter().any(|s| matches!(s, Stmt::WriteFnPtr { .. }));
            body.push(Stmt::Loop { count: iters, body: loop_body });
            // Sparse profiles (mcf-like): guarantee the protected operation
            // at least once per driver iteration, *outside* the hot loop,
            // so tiny WRPKRU densities are reachable but never zero.
            if fidx == 0 && p.call_rate > 0.0 && !has_call {
                body.push(Stmt::Call(self.rng.gen_range(1..self.num_funcs)));
            }
            if fidx == 0 && self.fn_ptr_slots > 0 && p.fn_ptr_write_rate > 0.0 && !has_fpw {
                body.push(Stmt::WriteFnPtr {
                    slot: self.rng.gen_range(0..self.fn_ptr_slots),
                    func: self.rng.gen_range(self.target_start()..self.num_funcs),
                });
            }
            let tail = self.rng.gen_range(1..=3);
            for _ in 0..tail {
                body.push(self.stmt(fidx, false, 0));
            }
        }
        Function { name: format!("f{fidx}"), body }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::standard_profiles;
    use crate::Stmt as S;

    #[test]
    fn all_standard_profiles_synthesize_valid_modules() {
        for p in standard_profiles() {
            let m = synthesize(&p); // validate() runs inside
            assert!(!m.functions.is_empty(), "{}", p.name);
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let p = standard_profiles()[3];
        assert_eq!(synthesize(&p), synthesize(&p));
    }

    #[test]
    fn call_density_orders_like_the_profiles() {
        // Static call counts should roughly follow call_rate.
        fn count_calls(stmts: &[S]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    S::Call(_) => 1,
                    S::Loop { body, .. } => count_calls(body),
                    S::If { then_body, else_body, .. } => {
                        count_calls(then_body) + count_calls(else_body)
                    }
                    _ => 0,
                })
                .sum()
        }
        let profiles = standard_profiles();
        let omnetpp = profiles.iter().find(|p| p.name == "520.omnetpp_r").unwrap();
        let mcf = profiles.iter().find(|p| p.name == "505.mcf_r").unwrap();
        let dense: usize = synthesize(omnetpp).functions.iter().map(|f| count_calls(&f.body)).sum();
        let sparse: usize = synthesize(mcf).functions.iter().map(|f| count_calls(&f.body)).sum();
        assert!(dense > sparse, "omnetpp {dense} vs mcf {sparse}");
    }

    #[test]
    fn fn_ptr_machinery_only_for_cpi_profiles() {
        for p in standard_profiles() {
            let m = synthesize(&p);
            let uses_ptrs = p.fn_ptr_write_rate > 0.0 || p.indirect_call_rate > 0.0;
            assert_eq!(m.fn_ptr_slots > 0, uses_ptrs, "{}", p.name);
        }
    }

    #[test]
    fn target_functions_are_pure_leaves() {
        for p in standard_profiles().into_iter().take(4) {
            let m = synthesize(&p);
            for f in m.functions.iter().rev().take(FN_PTR_TARGETS) {
                assert!(f.is_leaf(), "{}: {} must be a leaf", p.name, f.name);
            }
        }
    }
}
