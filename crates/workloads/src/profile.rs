//! Per-benchmark workload profiles and the standard evaluation suite.

use specmpk_isa::{Instr, Program};

use crate::codegen::{CodeGenerator, PkruUpdateStyle, Protection, Region};
use crate::ir::Module;
use crate::synth::synthesize;

/// Which protection scheme a workload is evaluated under (paper §VI-B:
/// SPEC2017 + shadow stack, SPEC2006 + code-pointer integrity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Shadow-stack return-address protection.
    ShadowStack,
    /// Code-pointer integrity (code-pointer separation).
    Cpi,
}

impl Scheme {
    /// The protection pass implementing this scheme.
    #[must_use]
    pub fn protection(self) -> Protection {
        match self {
            Scheme::ShadowStack => Protection::ShadowStack,
            Scheme::Cpi => Protection::Cpi,
        }
    }

    /// The paper's label suffix ("SS" / "CPI").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scheme::ShadowStack => "SS",
            Scheme::Cpi => "CPI",
        }
    }
}

/// Structural knobs calibrating a synthetic workload to a benchmark's
/// pipeline-relevant character (call density → WRPKRU density for SS;
/// pointer-write density → WRPKRU density for CPI; working set → cache
/// behaviour; branch irregularity → misprediction rate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Benchmark name as the paper's figures spell it.
    pub name: &'static str,
    /// Protection scheme this benchmark is evaluated under.
    pub scheme: Scheme,
    /// RNG seed (workloads are fully deterministic).
    pub seed: u64,
    /// Helper functions beyond `main`.
    pub num_helpers: usize,
    /// Statements per function body (min, max).
    pub body_stmts: (usize, usize),
    /// Probability that a loop-body statement is a direct call — the main
    /// lever on dynamic call density and hence SS WRPKRU/kilo-instr.
    pub call_rate: f64,
    /// Probability of a data-dependent `If` per statement slot.
    pub branch_rate: f64,
    /// Probability of a load/store per statement slot.
    pub mem_rate: f64,
    /// Loop trip counts (min, max).
    pub loop_iters: (u32, u32),
    /// Total array working set in KiB (power-of-two split across arrays).
    pub array_kb: u64,
    /// Probability of a function-pointer write per statement slot (CPI's
    /// WRPKRU lever).
    pub fn_ptr_write_rate: f64,
    /// Probability of an indirect call per statement slot.
    pub indirect_call_rate: f64,
    /// Driver iterations (total dynamic length lever).
    pub driver_iterations: u32,
}

/// A named, reproducible workload: a synthesized IR module plus builders
/// for each protection variant.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Profile this workload was synthesized from.
    pub profile: WorkloadProfile,
    /// The benchmark's scheme (copied from the profile for convenience).
    pub scheme: Scheme,
    module: Module,
}

impl Workload {
    /// Synthesizes the workload from its profile.
    #[must_use]
    pub fn from_profile(profile: WorkloadProfile) -> Self {
        let module = synthesize(&profile);
        Workload { scheme: profile.scheme, profile, module }
    }

    /// The display name, e.g. `"520.omnetpp_r (SS)"`.
    #[must_use]
    pub fn name(&self) -> String {
        format!("{} ({})", self.profile.name, self.scheme.label())
    }

    /// The synthesized IR module.
    #[must_use]
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Lowers with an explicit protection pass.
    #[must_use]
    pub fn build(&self, protection: Protection) -> Program {
        CodeGenerator::new(&self.module, protection).generate()
    }

    /// Lowers with an explicit protection pass and PKRU-update style
    /// (the §V-C6 `RDPKRU` study).
    #[must_use]
    pub fn build_with_style(&self, protection: Protection, style: PkruUpdateStyle) -> Program {
        CodeGenerator::new(&self.module, protection).with_pkru_style(style).generate()
    }

    /// Lowers with an explicit protection pass, also returning the
    /// PC-range → region-name side map for profiler folding.
    #[must_use]
    pub fn build_with_regions(&self, protection: Protection) -> (Program, Vec<Region>) {
        CodeGenerator::new(&self.module, protection).generate_with_regions()
    }

    /// Lowers with the scheme's own protection (the paper's evaluated
    /// binary).
    #[must_use]
    pub fn build_protected(&self) -> Program {
        self.build(self.scheme.protection())
    }

    /// Like [`build_protected`](Self::build_protected), plus the region
    /// side map.
    #[must_use]
    pub fn build_protected_with_regions(&self) -> (Program, Vec<Region>) {
        self.build_with_regions(self.scheme.protection())
    }

    /// Lowers without any protection (the insecure baseline of Fig. 4).
    #[must_use]
    pub fn build_unprotected(&self) -> Program {
        self.build(Protection::None)
    }

    /// Lowers with protection but replaces every `WRPKRU` with `NOP` —
    /// isolating compiler-transformation overhead from serialization
    /// overhead, exactly the Fig. 4 methodology. (PKRU then never changes
    /// from its boot value, so no protection faults occur.)
    #[must_use]
    pub fn build_nop_wrpkru(&self) -> Program {
        let protected = self.build_protected();
        let text: Vec<Instr> = protected
            .text()
            .iter()
            .map(|i| if matches!(i, Instr::Wrpkru) { Instr::Nop } else { *i })
            .collect();
        let mut p = Program::new(protected.text_base(), text);
        for seg in protected.segments() {
            p.add_segment(seg.clone());
        }
        p.set_entry(protected.entry());
        p
    }
}

/// The 16-benchmark evaluation suite: ten SPEC2017-like workloads under
/// shadow-stack protection and six SPEC2006-like workloads under CPI,
/// calibrated to span the paper's Fig. 10 WRPKRU-density range (from
/// ~0.1/kilo-instr for mcf to ~25/kilo-instr for omnetpp-SS).
#[must_use]
pub fn standard_suite() -> Vec<Workload> {
    standard_profiles().into_iter().map(Workload::from_profile).collect()
}

/// The profiles behind [`standard_suite`].
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn standard_profiles() -> Vec<WorkloadProfile> {
    let ss = |name, seed, num_helpers, body, call_rate, branch, mem, iters, kb| WorkloadProfile {
        name,
        scheme: Scheme::ShadowStack,
        seed,
        num_helpers,
        body_stmts: body,
        call_rate,
        branch_rate: branch,
        mem_rate: mem,
        loop_iters: iters,
        array_kb: kb,
        fn_ptr_write_rate: 0.0,
        indirect_call_rate: 0.0,
        driver_iterations: 100_000,
    };
    let cpi = |name, seed, num_helpers, body, fp_rate, ind_rate, branch, mem, iters, kb| {
        WorkloadProfile {
            name,
            scheme: Scheme::Cpi,
            seed,
            num_helpers,
            body_stmts: body,
            call_rate: 0.10,
            branch_rate: branch,
            mem_rate: mem,
            loop_iters: iters,
            array_kb: kb,
            fn_ptr_write_rate: fp_rate,
            indirect_call_rate: ind_rate,
            driver_iterations: 100_000,
        }
    };
    vec![
        // --- SPEC2017 + shadow stack (call density ⇒ WRPKRU density) ---
        ss("520.omnetpp_r", 20, 8, (3, 7), 0.25, 0.15, 0.30, (2, 5), 256),
        ss("500.perlbench_r", 5, 8, (4, 9), 0.09, 0.20, 0.30, (2, 6), 64),
        ss("502.gcc_r", 2, 10, (5, 10), 0.90, 0.25, 0.30, (2, 6), 128),
        ss("541.leela_r", 41, 6, (5, 11), 0.35, 0.25, 0.25, (3, 7), 64),
        ss("531.deepsjeng_r", 31, 6, (5, 11), 0.06, 0.30, 0.25, (3, 7), 64),
        ss("526.blender_r", 26, 6, (7, 14), 0.35, 0.10, 0.35, (4, 10), 128),
        ss("523.xalancbmk_r", 23, 8, (7, 14), 0.04, 0.20, 0.35, (4, 10), 256),
        ss("525.x264_r", 25, 4, (10, 18), 0.70, 0.08, 0.45, (8, 20), 128),
        ss("557.xz_r", 57, 4, (10, 18), 0.002, 0.10, 0.50, (20, 40), 512),
        ss("505.mcf_r", 55, 3, (10, 20), 0.04, 0.12, 0.55, (40, 80), 2048),
        // --- SPEC2006 + CPI (pointer-write density ⇒ WRPKRU density) ---
        cpi("453.povray", 2153, 8, (4, 9), 0.13, 0.20, 0.15, 0.30, (2, 6), 64),
        cpi("471.omnetpp", 1171, 8, (4, 9), 0.002, 0.15, 0.15, 0.30, (2, 6), 256),
        cpi("400.perlbench", 3100, 8, (5, 10), 0.18, 0.12, 0.20, 0.30, (3, 7), 64),
        cpi("483.xalancbmk", 2183, 8, (6, 12), 0.13, 0.10, 0.20, 0.35, (3, 8), 256),
        cpi("445.gobmk", 145, 6, (8, 14), 0.06, 0.05, 0.25, 0.35, (5, 12), 128),
        cpi("429.mcf", 2129, 3, (10, 20), 0.002, 0.01, 0.12, 0.55, (40, 80), 2048),
    ]
}

/// Synthetic profiles for the simulator-throughput benches — deliberately
/// *not* part of the 16-workload evaluation suite. One straight-line
/// ALU-heavy program stresses the fused rename+issue fast path (empty
/// issue queue, always-ready sources); one pointer-chase program with a
/// large working set stresses the idle-cycle bulk advance (long
/// cache-miss windows where the pipeline is frozen).
#[must_use]
pub fn bench_profiles() -> Vec<WorkloadProfile> {
    let base = WorkloadProfile {
        name: "",
        scheme: Scheme::ShadowStack,
        seed: 0,
        num_helpers: 2,
        body_stmts: (0, 0),
        call_rate: 0.0,
        branch_rate: 0.0,
        mem_rate: 0.0,
        loop_iters: (0, 0),
        array_kb: 4,
        fn_ptr_write_rate: 0.0,
        indirect_call_rate: 0.0,
        driver_iterations: 100_000,
    };
    vec![
        WorkloadProfile {
            name: "bench.alu_straightline",
            seed: 7001,
            body_stmts: (16, 24),
            loop_iters: (100, 200),
            ..base
        },
        WorkloadProfile {
            name: "bench.pointer_chase",
            seed: 7002,
            num_helpers: 3,
            body_stmts: (8, 14),
            call_rate: 0.02,
            branch_rate: 0.05,
            mem_rate: 0.75,
            loop_iters: (16, 80),
            array_kb: 4096,
            ..base
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_profiles_synthesize_and_lower() {
        for profile in bench_profiles() {
            let w = Workload::from_profile(profile);
            let p = w.build_protected();
            assert!(!p.text().is_empty(), "{} lowers to code", w.name());
        }
    }

    #[test]
    fn suite_has_sixteen_named_workloads() {
        let suite = standard_suite();
        assert_eq!(suite.len(), 16);
        let ss = suite.iter().filter(|w| w.scheme == Scheme::ShadowStack).count();
        let cpi = suite.iter().filter(|w| w.scheme == Scheme::Cpi).count();
        assert_eq!((ss, cpi), (10, 6));
        let names: std::collections::HashSet<String> = suite.iter().map(Workload::name).collect();
        assert_eq!(names.len(), 16, "names must be unique");
    }

    #[test]
    fn workload_synthesis_is_deterministic() {
        let p = standard_profiles()[0];
        let a = Workload::from_profile(p);
        let b = Workload::from_profile(p);
        assert_eq!(a.module(), b.module());
        assert_eq!(a.build_protected(), b.build_protected());
    }

    #[test]
    fn protected_binary_contains_wrpkru_and_unprotected_does_not() {
        let w = Workload::from_profile(standard_profiles()[0]);
        let count = |p: &Program| p.text().iter().filter(|i| matches!(i, Instr::Wrpkru)).count();
        assert!(count(&w.build_protected()) > 0);
        assert_eq!(count(&w.build_unprotected()), 0);
    }

    #[test]
    fn nop_variant_replaces_every_wrpkru() {
        let w = Workload::from_profile(standard_profiles()[1]);
        let protected = w.build_protected();
        let nop = w.build_nop_wrpkru();
        assert_eq!(protected.len(), nop.len());
        assert!(nop.text().iter().all(|i| !matches!(i, Instr::Wrpkru)));
        // All other instructions are unchanged.
        let diffs = protected.text().iter().zip(nop.text()).filter(|(a, b)| a != b).count();
        assert!(diffs > 0);
        assert!(protected
            .text()
            .iter()
            .zip(nop.text())
            .filter(|(a, b)| a != b)
            .all(|(a, b)| matches!(a, Instr::Wrpkru) && matches!(b, Instr::Nop)));
    }

    #[test]
    fn cpi_workloads_have_indirect_call_infrastructure() {
        let suite = standard_suite();
        let povray = suite.iter().find(|w| w.profile.name == "453.povray").unwrap();
        assert!(povray.module().fn_ptr_slots > 0);
        let p = povray.build_protected();
        assert!(p.segment("safe_region").is_some());
    }
}
