//! The per-pkey Disabling Counters (paper §V-C1).

use specmpk_mpk::{Pkey, NUM_PKEYS};

/// A pair of per-pkey counters tracking how many *in-flight, executed*
/// `WRPKRU` instructions carry an Access-Disable / Write-Disable bit for
/// each key.
///
/// Counters are incremented when a `WRPKRU` executes (its PKRU value becomes
/// known) and decremented by the *same* instruction at retirement or squash,
/// using the AD/WD bitmaps stored in its `ROB_pkru` entry. Because WRPKRUs
/// execute in order among themselves (PKRU is a source operand of WRPKRU),
/// the counters are never incremented out of order.
///
/// The required width per counter is `⌊log2(ROB_pkru size)⌋ + 1` bits; with
/// Rust we simply use `u8` (a `ROB_pkru` larger than 255 would be absurd)
/// and let the §VIII cost model report the architectural bit count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DisablingCounters {
    access_disable: [u8; NUM_PKEYS],
    write_disable: [u8; NUM_PKEYS],
}

impl DisablingCounters {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments counters for every key set in the AD/WD bitmaps — called
    /// when a `WRPKRU` executes.
    pub fn increment(&mut self, ad_bitmap: u16, wd_bitmap: u16) {
        for k in 0..NUM_PKEYS {
            if ad_bitmap & (1 << k) != 0 {
                self.access_disable[k] = self.access_disable[k].checked_add(1).expect(
                    "AccessDisableCounter overflow: more WRPKRUs in flight than ROB_pkru allows",
                );
            }
            if wd_bitmap & (1 << k) != 0 {
                self.write_disable[k] = self.write_disable[k].checked_add(1).expect(
                    "WriteDisableCounter overflow: more WRPKRUs in flight than ROB_pkru allows",
                );
            }
        }
    }

    /// Decrements counters for every key set in the bitmaps — called when
    /// the incrementing `WRPKRU` retires or squashes.
    ///
    /// # Panics
    ///
    /// Panics on underflow, which would indicate a bookkeeping bug in the
    /// pipeline (a decrement without a matching increment).
    pub fn decrement(&mut self, ad_bitmap: u16, wd_bitmap: u16) {
        for k in 0..NUM_PKEYS {
            if ad_bitmap & (1 << k) != 0 {
                self.access_disable[k] =
                    self.access_disable[k].checked_sub(1).expect("AccessDisableCounter underflow");
            }
            if wd_bitmap & (1 << k) != 0 {
                self.write_disable[k] =
                    self.write_disable[k].checked_sub(1).expect("WriteDisableCounter underflow");
            }
        }
    }

    /// Number of in-flight executed WRPKRUs with Access-Disable for `pkey`.
    #[must_use]
    pub fn access_disable(&self, pkey: Pkey) -> u8 {
        self.access_disable[pkey.index()]
    }

    /// Number of in-flight executed WRPKRUs with Write-Disable for `pkey`.
    #[must_use]
    pub fn write_disable(&self, pkey: Pkey) -> u8 {
        self.write_disable[pkey.index()]
    }

    /// Whether every counter is zero (no disabling updates in flight).
    #[must_use]
    pub fn all_zero(&self) -> bool {
        self.access_disable.iter().all(|&c| c == 0) && self.write_disable.iter().all(|&c| c == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u8) -> Pkey {
        Pkey::new(i).unwrap()
    }

    #[test]
    fn fresh_counters_are_zero() {
        let c = DisablingCounters::new();
        assert!(c.all_zero());
        for key in Pkey::all() {
            assert_eq!(c.access_disable(key), 0);
            assert_eq!(c.write_disable(key), 0);
        }
    }

    #[test]
    fn increment_decrement_round_trip() {
        let mut c = DisablingCounters::new();
        c.increment(0b0011, 0b0100);
        assert_eq!(c.access_disable(k(0)), 1);
        assert_eq!(c.access_disable(k(1)), 1);
        assert_eq!(c.write_disable(k(2)), 1);
        assert!(!c.all_zero());
        c.decrement(0b0011, 0b0100);
        assert!(c.all_zero());
    }

    #[test]
    fn counters_accumulate_across_wrpkrus() {
        let mut c = DisablingCounters::new();
        c.increment(1 << 5, 0);
        c.increment(1 << 5, 0);
        assert_eq!(c.access_disable(k(5)), 2);
        c.decrement(1 << 5, 0);
        assert_eq!(c.access_disable(k(5)), 1);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn unmatched_decrement_panics() {
        DisablingCounters::new().decrement(1, 0);
    }
}
