//! Analytic hardware-cost model (paper §VIII).
//!
//! The paper reports **93 B of sequential logic** for the Table III
//! configuration (8-entry `ROB_pkru`, 72-entry store queue), ~0.19 % of the
//! 48 KiB L1 data cache. This module derives that figure from first
//! principles so the cost of any configuration (e.g. the Fig. 11 sweep) can
//! be reported.

use crate::SpecMpkConfig;

/// Bit-level storage breakdown of the SpecMPK additions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwareCost {
    /// `ROB_pkru`: per entry, a 32-bit PKRU value plus two 16-bit pkey
    /// bitmaps for counter decrement at retire/squash.
    pub rob_pkru_bits: u64,
    /// `ARF_pkru`: one committed 32-bit PKRU.
    pub arf_pkru_bits: u64,
    /// Disabling Counters: 2 counters × 16 pkeys ×
    /// (⌊log2(ROB_pkru)⌋ + 1) bits.
    pub counter_bits: u64,
    /// Store-queue forwarding-disable bits: one per SQ entry.
    pub sq_bits: u64,
    /// Pointer/rename state: head, tail, and `RMT_pkru` (valid + tag).
    pub pointer_bits: u64,
}

impl HardwareCost {
    /// Total storage in bits, including pointer state.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.rob_pkru_bits
            + self.arf_pkru_bits
            + self.counter_bits
            + self.sq_bits
            + self.pointer_bits
    }

    /// The headline byte count the paper reports: the four array
    /// structures, excluding the few bits of pointer state.
    #[must_use]
    pub fn headline_bytes(&self) -> u64 {
        (self.rob_pkru_bits + self.arf_pkru_bits + self.counter_bits + self.sq_bits) / 8
    }

    /// Storage as a fraction of a data cache of `cache_bytes` (the paper
    /// compares against the 48 KiB L1D: ≈ 0.19 %).
    #[must_use]
    pub fn fraction_of_cache(&self, cache_bytes: u64) -> f64 {
        self.headline_bytes() as f64 / cache_bytes as f64
    }
}

/// Computes the storage cost of a SpecMPK configuration.
///
/// # Examples
///
/// ```
/// use specmpk_core::{hardware_cost, SpecMpkConfig};
///
/// let cost = hardware_cost(SpecMpkConfig::default());
/// assert_eq!(cost.headline_bytes(), 93); // the paper's §VIII figure
/// ```
#[must_use]
pub fn hardware_cost(config: SpecMpkConfig) -> HardwareCost {
    let entries = config.rob_pkru_size as u64;
    let counter_width = 64 - u64::from((entries).leading_zeros()); // ⌊log2 n⌋ + 1
    let tag_width = u64::from(usize::BITS - (config.rob_pkru_size - 1).leading_zeros()).max(1);
    HardwareCost {
        rob_pkru_bits: entries * (32 + 16 + 16),
        arf_pkru_bits: 32,
        counter_bits: 2 * 16 * counter_width,
        sq_bits: config.store_queue_size as u64,
        pointer_bits: 2 * tag_width + (1 + tag_width),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_headline() {
        let cost = hardware_cost(SpecMpkConfig::default());
        // 8×64 + 32 + 2×16×4 + 72 = 512 + 32 + 128 + 72 = 744 bits = 93 B.
        assert_eq!(cost.rob_pkru_bits, 512);
        assert_eq!(cost.arf_pkru_bits, 32);
        assert_eq!(cost.counter_bits, 128);
        assert_eq!(cost.sq_bits, 72);
        assert_eq!(cost.headline_bytes(), 93);
    }

    #[test]
    fn fraction_of_l1d_matches_paper() {
        let cost = hardware_cost(SpecMpkConfig::default());
        let frac = cost.fraction_of_cache(48 * 1024);
        assert!((frac - 0.0019).abs() < 2e-4, "{frac}");
    }

    #[test]
    fn counter_width_follows_log_formula() {
        // ROB_pkru = 2 → 2-bit counters; = 4 → 3 bits; = 8 → 4 bits.
        let c2 = hardware_cost(SpecMpkConfig { rob_pkru_size: 2, store_queue_size: 72 });
        assert_eq!(c2.counter_bits, 2 * 16 * 2);
        let c4 = hardware_cost(SpecMpkConfig { rob_pkru_size: 4, store_queue_size: 72 });
        assert_eq!(c4.counter_bits, 2 * 16 * 3);
        let c8 = hardware_cost(SpecMpkConfig { rob_pkru_size: 8, store_queue_size: 72 });
        assert_eq!(c8.counter_bits, 2 * 16 * 4);
    }

    #[test]
    fn cost_scales_monotonically_with_rob_size() {
        let sizes = [2usize, 4, 8, 16];
        let costs: Vec<u64> = sizes
            .iter()
            .map(|&s| {
                hardware_cost(SpecMpkConfig { rob_pkru_size: s, store_queue_size: 72 }).total_bits()
            })
            .collect();
        assert!(costs.windows(2).all(|w| w[0] < w[1]), "{costs:?}");
    }
}
