//! The [`PermissionPolicy`] trait: the open-ended replacement for matching
//! on [`WrpkruPolicy`] everywhere.
//!
//! Every decision the pipeline used to make by switching on the policy enum
//! is a method here, taking a [`PolicyView`] — a read-only window onto the
//! engine's rename state (`ROB_pkru`, `ARF_pkru`, Disabling Counters) — so
//! a policy can *decide* but never *mutate*. The three paper policies are
//! the unit types [`Serialized`], [`NonSecureSpec`] and [`SpecMpk`];
//! [`registry`] maps stable names to them.
//!
//! # Registering a fourth policy
//!
//! 1. Define a (typically zero-sized) type and implement
//!    [`PermissionPolicy`] for it.
//! 2. Give it a `static` instance and a [`PolicyRef`] constant.
//! 3. Add that constant to [`registry::ALL`].
//!
//! Nothing else changes: `SimConfig`, the experiment bins and
//! `specmpk-sim --policy` all resolve policies through the registry.

use std::fmt;

use specmpk_mpk::{AccessKind, Pkey, Pkru, ProtectionFault};

use crate::counters::DisablingCounters;
use crate::engine::PkruSource;
use crate::rob_pkru::{PkruTag, RobPkru};
use crate::{SpecMpkConfig, WrpkruPolicy};

/// Read-only window onto the [`PkruEngine`](crate::PkruEngine) state a
/// policy decides over: the speculative buffer, the committed register and
/// the aggregated Disabling Counters.
#[derive(Clone, Copy)]
pub struct PolicyView<'a> {
    rob: &'a RobPkru,
    arf: Pkru,
    counters: &'a DisablingCounters,
}

impl<'a> PolicyView<'a> {
    /// Assembles a view (crate-internal: only the engine builds these).
    pub(crate) fn new(rob: &'a RobPkru, arf: Pkru, counters: &'a DisablingCounters) -> Self {
        PolicyView { rob, arf, counters }
    }

    /// The committed PKRU (`ARF_pkru`).
    #[must_use]
    pub fn committed(&self) -> Pkru {
        self.arf
    }

    /// Number of in-flight WRPKRUs.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.rob.len()
    }

    /// Whether no WRPKRU is in flight.
    #[must_use]
    pub fn window_empty(&self) -> bool {
        self.rob.is_empty()
    }

    /// Whether `ROB_pkru` has no free entry.
    #[must_use]
    pub fn window_full(&self) -> bool {
        self.rob.is_full()
    }

    /// The per-pkey Disabling Counters over the WRPKRU-window.
    #[must_use]
    pub fn counters(&self) -> &DisablingCounters {
        self.counters
    }

    /// The PKRU value a source operand reads: the in-flight value if still
    /// buffered, else the committed one.
    #[must_use]
    pub fn resolve(&self, source: PkruSource) -> Pkru {
        match source {
            PkruSource::Committed => self.arf,
            PkruSource::Renamed(tag) => self.rob.value_of(tag).unwrap_or(self.arf),
        }
    }
}

impl fmt::Debug for PolicyView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PolicyView")
            .field("inflight", &self.rob.len())
            .field("committed", &self.arf)
            .finish_non_exhaustive()
    }
}

/// A WRPKRU execution policy: every point where the microarchitecture's
/// behavior depends on *which* permission-update scheme is simulated.
///
/// Implementations must be stateless (`&self` everywhere, decisions pure in
/// the [`PolicyView`]): the same engine state must always produce the same
/// answer, or checkpoint/restore would diverge from straight-line replay.
pub trait PermissionPolicy: fmt::Debug + Sync {
    /// Stable lowercase identifier, used in file names, JSON and the CLI
    /// (`--policy <key>`).
    fn key(&self) -> &'static str;

    /// Human-readable name, used in figures and tables. Matches the
    /// pre-trait `WrpkruPolicy` `Display` strings so golden artifacts stay
    /// byte-identical.
    fn display_name(&self) -> &'static str;

    /// Number of `ROB_pkru` entries the engine allocates for this policy.
    fn rob_pkru_capacity(&self, config: &SpecMpkConfig) -> usize;

    /// Whether an in-flight WRPKRU blocks *all* younger renames (the
    /// drain-before/stall-after serialization barrier).
    fn rename_barrier_while_inflight(&self) -> bool {
        false
    }

    /// Whether [`load_check`](Self::load_check),
    /// [`store_check`](Self::store_check) or
    /// [`tlb_miss_must_stall`](Self::tlb_miss_must_stall) can ever answer
    /// "stall". A static property of the policy, cached by the engine so
    /// the per-access hot paths skip virtual dispatch for policies whose
    /// checks always pass. Must be `true` whenever any check can fail in
    /// any state; the conservative default keeps new policies correct.
    fn speculative_checks_can_fail(&self) -> bool {
        true
    }

    /// Whether [`fault_check_speculative`](Self::fault_check_speculative)
    /// can ever return an error. A static property of the policy, cached
    /// by the engine so policies that never fault speculatively (the
    /// paper's design, §V-C4) pay nothing at execute time. Must be `true`
    /// whenever a speculative fault is possible in any state.
    fn faults_speculatively(&self) -> bool {
        true
    }

    /// Whether a `WRPKRU` may rename this cycle; `older_inflight` is the
    /// number of older not-yet-retired instructions of any kind.
    fn can_rename_wrpkru(&self, view: PolicyView<'_>, older_inflight: usize) -> bool;

    /// Whether a `RDPKRU` may rename this cycle.
    fn can_rename_rdpkru(&self, view: PolicyView<'_>, older_inflight: usize) -> bool;

    /// Which PKRU value an instruction's implicit source operand renames
    /// to. The default is the `RMT_pkru` lookup every paper policy uses.
    fn rename_pkru_source(&self, rmt: Option<PkruTag>) -> PkruSource {
        match rmt {
            Some(tag) => PkruSource::Renamed(tag),
            None => PkruSource::Committed,
        }
    }

    /// The **PKRU Load Check** (§V-C2): may a load to a page colored
    /// `pkey` execute speculatively and update microarchitectural state?
    fn load_check(&self, view: PolicyView<'_>, pkey: Pkey) -> bool;

    /// The **PKRU Store Check** (§V-C2): may a store to `pkey` forward its
    /// data to younger loads?
    fn store_check(&self, view: PolicyView<'_>, pkey: Pkey) -> bool;

    /// Whether a memory access that misses the TLB must stall to the
    /// Active-List head (§V-C5).
    fn tlb_miss_must_stall(&self, view: PolicyView<'_>) -> bool;

    /// Speculative fault determination at execute time. `Ok(())` means no
    /// fault is recorded; a policy that never faults speculatively (the
    /// paper's design, §V-C4) returns `Ok` unconditionally and relies on
    /// the committed re-check at the Active-List head.
    ///
    /// # Errors
    ///
    /// The fault to record in the Active-List entry, raised only if the
    /// instruction retires.
    fn fault_check_speculative(
        &self,
        view: PolicyView<'_>,
        source: PkruSource,
        pkey: Pkey,
        kind: AccessKind,
    ) -> Result<(), ProtectionFault>;

    /// Hook: a WRPKRU just committed `new_committed` to `ARF_pkru`.
    /// Extension point for policies with retirement-time bookkeeping
    /// (e.g. sealed/call-gate schemes validating the committed value).
    fn on_retire_wrpkru(&self, new_committed: Pkru) {
        let _ = new_committed;
    }

    /// Hook: a checkpoint is being restored (branch misprediction).
    fn on_restore(&self) {}

    /// Hook: all speculative PKRU state was flushed (fault at the head).
    fn on_flush(&self) {}
}

/// The baseline: `WRPKRU` fully serializes the pipeline (§II-A3).
#[derive(Debug, Clone, Copy, Default)]
pub struct Serialized;

impl PermissionPolicy for Serialized {
    fn key(&self) -> &'static str {
        "serialized"
    }

    fn display_name(&self) -> &'static str {
        "Serialized"
    }

    /// At most one WRPKRU can be in flight by construction.
    fn rob_pkru_capacity(&self, _config: &SpecMpkConfig) -> usize {
        1
    }

    fn rename_barrier_while_inflight(&self) -> bool {
        true
    }

    /// No speculative window: nothing to check against.
    fn speculative_checks_can_fail(&self) -> bool {
        false
    }

    /// Only when it would be the oldest in-flight instruction — the
    /// drain-before barrier.
    fn can_rename_wrpkru(&self, view: PolicyView<'_>, older_inflight: usize) -> bool {
        older_inflight == 0 && view.window_empty()
    }

    /// Same global barrier as WRPKRU.
    fn can_rename_rdpkru(&self, view: PolicyView<'_>, older_inflight: usize) -> bool {
        older_inflight == 0 && view.window_empty()
    }

    fn load_check(&self, _view: PolicyView<'_>, _pkey: Pkey) -> bool {
        true
    }

    fn store_check(&self, _view: PolicyView<'_>, _pkey: Pkey) -> bool {
        true
    }

    fn tlb_miss_must_stall(&self, _view: PolicyView<'_>) -> bool {
        false
    }

    /// Degenerate: with the barrier, the source is always the committed
    /// PKRU, so this is a precise check.
    fn fault_check_speculative(
        &self,
        view: PolicyView<'_>,
        source: PkruSource,
        pkey: Pkey,
        kind: AccessKind,
    ) -> Result<(), ProtectionFault> {
        view.resolve(source).check(pkey, kind)
    }
}

/// Speculative WRPKRU with no side-channel protection: the performance
/// upper bound and the attack victim of §IX-C.
#[derive(Debug, Clone, Copy, Default)]
pub struct NonSecureSpec;

impl PermissionPolicy for NonSecureSpec {
    fn key(&self) -> &'static str {
        "nonsecure"
    }

    fn display_name(&self) -> &'static str {
        "NonSecure SpecMPK"
    }

    /// PKRU is renamed through the main PRF, so the effective buffer is
    /// bounded only by the instruction window; modeled as a 512-entry
    /// buffer that can never fill in a 352-entry Active List.
    fn rob_pkru_capacity(&self, _config: &SpecMpkConfig) -> usize {
        512
    }

    /// Deliberately unprotected: no check ever stalls an access.
    fn speculative_checks_can_fail(&self) -> bool {
        false
    }

    fn can_rename_wrpkru(&self, view: PolicyView<'_>, _older_inflight: usize) -> bool {
        !view.window_full()
    }

    /// Reads the renamed value, so it needs no stall.
    fn can_rename_rdpkru(&self, _view: PolicyView<'_>, _older_inflight: usize) -> bool {
        true
    }

    fn load_check(&self, _view: PolicyView<'_>, _pkey: Pkey) -> bool {
        true
    }

    fn store_check(&self, _view: PolicyView<'_>, _pkey: Pkey) -> bool {
        true
    }

    fn tlb_miss_must_stall(&self, _view: PolicyView<'_>) -> bool {
        false
    }

    /// Checks against the instruction's *renamed* PKRU — transient enables
    /// are honored, which is exactly the leak.
    fn fault_check_speculative(
        &self,
        view: PolicyView<'_>,
        source: PkruSource,
        pkey: Pkey,
        kind: AccessKind,
    ) -> Result<(), ProtectionFault> {
        view.resolve(source).check(pkey, kind)
    }
}

/// The paper's secure speculative design (§V).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpecMpk;

impl PermissionPolicy for SpecMpk {
    fn key(&self) -> &'static str {
        "specmpk"
    }

    fn display_name(&self) -> &'static str {
        "SpecMPK"
    }

    fn rob_pkru_capacity(&self, config: &SpecMpkConfig) -> usize {
        config.rob_pkru_size
    }

    /// Never faults speculatively — accesses that might fault fail the
    /// load/store checks instead and re-check at the head (§V-C4).
    fn faults_speculatively(&self) -> bool {
        false
    }

    fn can_rename_wrpkru(&self, view: PolicyView<'_>, _older_inflight: usize) -> bool {
        !view.window_full()
    }

    /// RDPKRU serializes against in-flight WRPKRUs so it can read
    /// `ARF_pkru` (§V-C6).
    fn can_rename_rdpkru(&self, view: PolicyView<'_>, _older_inflight: usize) -> bool {
        view.window_empty()
    }

    /// Fails iff the WRPKRU-window contains *any* Access-Disable for the
    /// key: `AccessDisableCounter > 0` or committed AD (covers all three
    /// scenarios of Fig. 7).
    fn load_check(&self, view: PolicyView<'_>, pkey: Pkey) -> bool {
        view.counters().access_disable(pkey) == 0 && !view.committed().access_disabled(pkey)
    }

    /// Fails iff either Disabling Counter for the key is non-zero or the
    /// committed PKRU has AD *or* WD set — blocking the speculative
    /// store-to-load buffer-overflow channel (§III-C).
    fn store_check(&self, view: PolicyView<'_>, pkey: Pkey) -> bool {
        view.counters().access_disable(pkey) == 0
            && view.counters().write_disable(pkey) == 0
            && !view.committed().access_disabled(pkey)
            && !view.committed().write_disabled(pkey)
    }

    /// With the pkey unknown before the walk, any disabling permission
    /// anywhere in the WRPKRU-window forces the conservative stall.
    fn tlb_miss_must_stall(&self, view: PolicyView<'_>) -> bool {
        !view.counters().all_zero()
            || view.committed().any_access_disabled()
            || view.committed().any_write_disabled()
    }

    /// Never faults speculatively: instructions that might fault fail the
    /// load/store checks instead and are re-checked at the head (§V-C4).
    fn fault_check_speculative(
        &self,
        _view: PolicyView<'_>,
        _source: PkruSource,
        _pkey: Pkey,
        _kind: AccessKind,
    ) -> Result<(), ProtectionFault> {
        Ok(())
    }
}

/// A cheap, copyable handle to a registered [`PermissionPolicy`].
///
/// This is what configuration structs store: it keeps `SimConfig` `Copy`
/// while dispatching through the trait. Equality and hashing go by
/// [`key`](PermissionPolicy::key), so two handles to the same registered
/// policy always compare equal.
#[derive(Clone, Copy)]
pub struct PolicyRef(&'static dyn PermissionPolicy);

impl PolicyRef {
    /// The baseline serializing policy.
    pub const SERIALIZED: PolicyRef = PolicyRef(&Serialized);
    /// The unprotected speculative upper bound.
    pub const NONSECURE_SPEC: PolicyRef = PolicyRef(&NonSecureSpec);
    /// The paper's secure speculative design.
    pub const SPEC_MPK: PolicyRef = PolicyRef(&SpecMpk);
}

impl std::ops::Deref for PolicyRef {
    type Target = dyn PermissionPolicy;

    fn deref(&self) -> &Self::Target {
        self.0
    }
}

impl PartialEq for PolicyRef {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for PolicyRef {}

impl std::hash::Hash for PolicyRef {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

impl Default for PolicyRef {
    fn default() -> Self {
        PolicyRef::SPEC_MPK
    }
}

impl fmt::Debug for PolicyRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PolicyRef({})", self.key())
    }
}

impl fmt::Display for PolicyRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display_name())
    }
}

impl From<WrpkruPolicy> for PolicyRef {
    fn from(policy: WrpkruPolicy) -> Self {
        match policy {
            WrpkruPolicy::Serialized => PolicyRef::SERIALIZED,
            WrpkruPolicy::NonSecureSpec => PolicyRef::NONSECURE_SPEC,
            WrpkruPolicy::SpecMpk => PolicyRef::SPEC_MPK,
        }
    }
}

/// The name → policy registry: the single place that knows which policies
/// exist. Everything that used to iterate `WrpkruPolicy::all()` iterates
/// [`all`](registry::all) instead, and everything that parsed a policy
/// name resolves it with [`by_name`](registry::by_name).
pub mod registry {
    use super::PolicyRef;

    /// Every registered policy, in the order the paper's figures present
    /// them. Register a fourth policy by appending its [`PolicyRef`]
    /// constant here.
    pub const ALL: [PolicyRef; 3] =
        [PolicyRef::SERIALIZED, PolicyRef::NONSECURE_SPEC, PolicyRef::SPEC_MPK];

    /// Every registered policy, figure order.
    #[must_use]
    pub fn all() -> [PolicyRef; 3] {
        ALL
    }

    /// Looks a policy up by its stable [`key`](super::PermissionPolicy::key)
    /// (case-insensitive).
    #[must_use]
    pub fn by_name(name: &str) -> Option<PolicyRef> {
        ALL.into_iter().find(|p| p.key().eq_ignore_ascii_case(name))
    }

    /// The registered keys, for error messages and `--list-policies`.
    #[must_use]
    pub fn keys() -> [&'static str; 3] {
        let [a, b, c] = ALL;
        [a.key(), b.key(), c.key()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_every_key() {
        for policy in registry::all() {
            let found = registry::by_name(policy.key()).expect("key resolves");
            assert_eq!(found, policy);
        }
        assert_eq!(registry::by_name("SpecMPK"), Some(PolicyRef::SPEC_MPK), "case-insensitive");
        assert!(registry::by_name("no-such-policy").is_none());
    }

    #[test]
    fn enum_conversion_matches_registry_order() {
        let from_enum: Vec<PolicyRef> = WrpkruPolicy::all().into_iter().map(Into::into).collect();
        assert_eq!(from_enum, registry::all().to_vec());
    }

    #[test]
    fn display_matches_legacy_enum_display() {
        for policy in WrpkruPolicy::all() {
            assert_eq!(policy.to_string(), PolicyRef::from(policy).to_string());
        }
    }

    #[test]
    fn capacities_follow_the_paper() {
        let config = SpecMpkConfig::default();
        assert_eq!(PolicyRef::SERIALIZED.rob_pkru_capacity(&config), 1);
        assert_eq!(PolicyRef::NONSECURE_SPEC.rob_pkru_capacity(&config), 512);
        assert_eq!(PolicyRef::SPEC_MPK.rob_pkru_capacity(&config), 8);
    }

    #[test]
    fn static_properties_match_the_paper_policies() {
        // The engine caches these to skip virtual dispatch; a wrong value
        // silently disables a check, so pin each one.
        assert!(!PolicyRef::SERIALIZED.speculative_checks_can_fail());
        assert!(!PolicyRef::NONSECURE_SPEC.speculative_checks_can_fail());
        assert!(PolicyRef::SPEC_MPK.speculative_checks_can_fail());
        assert!(PolicyRef::SERIALIZED.faults_speculatively());
        assert!(PolicyRef::NONSECURE_SPEC.faults_speculatively());
        assert!(!PolicyRef::SPEC_MPK.faults_speculatively());
    }

    #[test]
    fn policy_ref_is_copy_eq_hash() {
        use std::collections::HashSet;
        let set: HashSet<PolicyRef> = registry::all().into_iter().collect();
        assert_eq!(set.len(), 3);
        let a = PolicyRef::SPEC_MPK;
        let b = a; // Copy
        assert_eq!(a, b);
        assert_eq!(a, PolicyRef::default());
    }
}
