//! `ROB_pkru`: the dedicated reorder buffer for in-flight PKRU values
//! (paper §V-B1).

use std::collections::VecDeque;

use specmpk_mpk::Pkru;

/// A tag naming one in-flight `WRPKRU`'s `ROB_pkru` entry.
///
/// Implemented as a monotonically increasing sequence number rather than a
/// raw circular-buffer index so stale tags can never alias a reused slot
/// (the hardware achieves the same with generation bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PkruTag(pub(crate) u64);

impl PkruTag {
    /// The underlying sequence number, for trace/observability output.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct RobPkruEntry {
    pub(crate) tag: PkruTag,
    /// `None` until the WRPKRU executes and its EAX value is known.
    pub(crate) value: Option<Pkru>,
    /// Which pkeys this update access-disables (stored so retire/squash can
    /// decrement the counters this entry incremented, §V-C1).
    pub(crate) ad_bitmap: u16,
    pub(crate) wd_bitmap: u16,
}

/// The dedicated PKRU reorder buffer: a FIFO of in-flight PKRU updates.
///
/// Allocation happens at rename (tail), values arrive at execute, and
/// entries drain at retire (head) or vanish on squash (tail rollback).
/// A full `ROB_pkru` stalls the frontend — the sensitivity knob of Fig. 11.
///
/// # Examples
///
/// ```
/// use specmpk_core::RobPkru;
/// use specmpk_mpk::Pkru;
///
/// let mut rob = RobPkru::new(2);
/// let a = rob.allocate().unwrap();
/// let b = rob.allocate().unwrap();
/// assert!(rob.allocate().is_none()); // full → frontend stall
/// rob.set_value(a, Pkru::ALL_ACCESS, 0, 0);
/// rob.set_value(b, Pkru::ALL_ACCESS, 0, 0);
/// assert_eq!(rob.retire_head().unwrap().0, a);
/// ```
#[derive(Debug, Clone)]
pub struct RobPkru {
    capacity: usize,
    entries: VecDeque<RobPkruEntry>,
    next_seq: u64,
}

impl RobPkru {
    /// Creates an empty buffer with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB_pkru must have at least one entry");
        RobPkru { capacity, entries: VecDeque::with_capacity(capacity), next_seq: 0 }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of in-flight entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no updates are in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether allocation would fail (frontend must stall).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Allocates a tail entry for a renaming `WRPKRU`; `None` when full.
    pub fn allocate(&mut self) -> Option<PkruTag> {
        if self.is_full() {
            return None;
        }
        let tag = PkruTag(self.next_seq);
        self.next_seq += 1;
        self.entries.push_back(RobPkruEntry { tag, value: None, ad_bitmap: 0, wd_bitmap: 0 });
        Some(tag)
    }

    /// Records the executed value (and its disable bitmaps) for `tag`.
    ///
    /// # Panics
    ///
    /// Panics if the tag is not in flight or already has a value — both
    /// indicate pipeline bookkeeping bugs.
    pub fn set_value(&mut self, tag: PkruTag, value: Pkru, ad_bitmap: u16, wd_bitmap: u16) {
        let entry = self
            .entries
            .iter_mut()
            .find(|e| e.tag == tag)
            .expect("set_value on a tag that is not in flight");
        assert!(entry.value.is_none(), "WRPKRU executed twice");
        entry.value = Some(value);
        entry.ad_bitmap = ad_bitmap;
        entry.wd_bitmap = wd_bitmap;
    }

    /// Whether `tag`'s value is available (or the entry already retired,
    /// in which case the committed PKRU covers it).
    #[must_use]
    pub fn value_ready(&self, tag: PkruTag) -> bool {
        match self.entries.iter().find(|e| e.tag == tag) {
            Some(e) => e.value.is_some(),
            None => true, // already retired
        }
    }

    /// The executed value of `tag`, if still in flight and executed.
    #[must_use]
    pub fn value_of(&self, tag: PkruTag) -> Option<Pkru> {
        self.entries.iter().find(|e| e.tag == tag).and_then(|e| e.value)
    }

    /// The youngest in-flight tag, if any (what `RMT_pkru` points to).
    #[must_use]
    pub fn youngest(&self) -> Option<PkruTag> {
        self.entries.back().map(|e| e.tag)
    }

    /// Pops the head entry for retirement, returning its tag, value, and
    /// disable bitmaps `(tag, value, ad, wd)`.
    ///
    /// # Panics
    ///
    /// Panics if the head has not executed — in-order retirement guarantees
    /// the value is present by the time the WRPKRU reaches the AL head.
    pub fn retire_head(&mut self) -> Option<(PkruTag, Pkru, u16, u16)> {
        let e = self.entries.pop_front()?;
        let value = e.value.expect("retiring WRPKRU that never executed");
        Some((e.tag, value, e.ad_bitmap, e.wd_bitmap))
    }

    /// Removes every entry with tag ≥ `first_squashed`, returning the
    /// `(ad, wd)` bitmaps of the *executed* squashed entries so the caller
    /// can decrement the Disabling Counters (squash path of §V-C1).
    pub fn squash_from(&mut self, first_squashed: PkruTag) -> Vec<(u16, u16)> {
        let mut undone = Vec::new();
        while let Some(back) = self.entries.back() {
            if back.tag < first_squashed {
                break;
            }
            let e = self.entries.pop_back().expect("back exists");
            if e.value.is_some() {
                undone.push((e.ad_bitmap, e.wd_bitmap));
            }
        }
        undone
    }

    /// The sequence number the *next* allocation will receive — used by
    /// checkpoints: squashing to a checkpoint removes all tags ≥ this.
    #[must_use]
    pub fn next_tag(&self) -> PkruTag {
        PkruTag(self.next_seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_allocation_and_retirement() {
        let mut rob = RobPkru::new(4);
        let t0 = rob.allocate().unwrap();
        let t1 = rob.allocate().unwrap();
        assert!(t0 < t1);
        rob.set_value(t0, Pkru::from_bits(1), 0b1, 0);
        rob.set_value(t1, Pkru::from_bits(2), 0, 0b10);
        let (tag, v, ad, wd) = rob.retire_head().unwrap();
        assert_eq!((tag, v.bits(), ad, wd), (t0, 1, 0b1, 0));
        let (tag, v, ..) = rob.retire_head().unwrap();
        assert_eq!((tag, v.bits()), (t1, 2));
        assert!(rob.retire_head().is_none());
    }

    #[test]
    fn capacity_limits_allocation() {
        let mut rob = RobPkru::new(2);
        assert!(rob.allocate().is_some());
        assert!(rob.allocate().is_some());
        assert!(rob.is_full());
        assert!(rob.allocate().is_none());
        rob.set_value(PkruTag(0), Pkru::ALL_ACCESS, 0, 0);
        rob.retire_head();
        assert!(!rob.is_full());
        assert!(rob.allocate().is_some());
    }

    #[test]
    fn value_ready_semantics() {
        let mut rob = RobPkru::new(4);
        let t = rob.allocate().unwrap();
        assert!(!rob.value_ready(t));
        rob.set_value(t, Pkru::ALL_ACCESS, 0, 0);
        assert!(rob.value_ready(t));
        rob.retire_head();
        assert!(rob.value_ready(t)); // retired ⇒ covered by ARF
        assert_eq!(rob.value_of(t), None);
    }

    #[test]
    fn squash_returns_only_executed_bitmaps() {
        let mut rob = RobPkru::new(8);
        let t0 = rob.allocate().unwrap();
        let t1 = rob.allocate().unwrap();
        let _t2 = rob.allocate().unwrap();
        rob.set_value(t0, Pkru::ALL_ACCESS, 0b01, 0);
        rob.set_value(t1, Pkru::ALL_ACCESS, 0b10, 0b10);
        // t2 never executed. Squash everything from t1 on.
        let undone = rob.squash_from(t1);
        assert_eq!(undone, vec![(0b10, 0b10)]);
        assert_eq!(rob.len(), 1);
        assert_eq!(rob.youngest(), Some(t0));
    }

    #[test]
    fn squash_from_future_tag_is_noop() {
        let mut rob = RobPkru::new(4);
        let _ = rob.allocate().unwrap();
        let next = rob.next_tag();
        assert!(rob.squash_from(next).is_empty());
        assert_eq!(rob.len(), 1);
    }

    #[test]
    #[should_panic(expected = "never executed")]
    fn retiring_unexecuted_head_panics() {
        let mut rob = RobPkru::new(2);
        rob.allocate().unwrap();
        rob.retire_head();
    }
}
