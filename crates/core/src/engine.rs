//! The policy engine the pipeline drives at rename / execute / retire /
//! squash time.

use specmpk_mpk::{AccessKind, Pkey, Pkru, ProtectionFault};

use crate::counters::DisablingCounters;
use crate::policy::{PolicyRef, PolicyView};
use crate::rob_pkru::{PkruTag, RobPkru};
use crate::SpecMpkConfig;

/// Where an instruction's implicit PKRU source operand was renamed to
/// (paper §V-B3).
///
/// `Committed` corresponds to `RMT_pkru.valid == 0` (the newest PKRU is the
/// architectural one); `Renamed` carries the `ROB_pkru` tag of the youngest
/// preceding in-flight `WRPKRU`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PkruSource {
    /// No in-flight WRPKRU precedes this instruction: read `ARF_pkru`.
    Committed,
    /// Depend on (and, for NonSecure, read) this `ROB_pkru` entry.
    Renamed(PkruTag),
}

/// Snapshot of the PKRU rename state taken at every branch, restored on
/// misprediction (the `ROB_pkru` analogue of an RMT checkpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PkruCheckpoint {
    first_squashed: PkruTag,
    rmt: Option<PkruTag>,
}

/// Counters the experiments report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PkruEngineStats {
    /// WRPKRUs that passed rename.
    pub wrpkru_renamed: u64,
    /// WRPKRUs that retired.
    pub wrpkru_retired: u64,
    /// WRPKRUs removed by squash.
    pub wrpkru_squashed: u64,
    /// *PKRU Load Check* failures (loads stalled to the AL head).
    pub load_check_failures: u64,
    /// *PKRU Store Check* failures (stores barred from forwarding).
    pub store_check_failures: u64,
    /// Rename stalls because `ROB_pkru` was full (reported by the caller
    /// through [`PkruEngine::note_rob_full_stall`]).
    pub rob_full_stall_cycles: u64,
    /// Deepest `ROB_pkru` occupancy reached (just after a WRPKRU renamed).
    pub rob_pkru_high_water: u64,
}

impl PkruEngineStats {
    /// Structured form for experiment artifacts.
    #[must_use]
    pub fn to_json(&self) -> specmpk_trace::Json {
        specmpk_trace::Json::object()
            .with("wrpkru_renamed", self.wrpkru_renamed)
            .with("wrpkru_retired", self.wrpkru_retired)
            .with("wrpkru_squashed", self.wrpkru_squashed)
            .with("load_check_failures", self.load_check_failures)
            .with("store_check_failures", self.store_check_failures)
            .with("rob_full_stall_cycles", self.rob_full_stall_cycles)
            .with("rob_pkru_high_water", self.rob_pkru_high_water)
    }
}

/// The per-core PKRU rename/check apparatus: `ROB_pkru`, `ARF_pkru`,
/// `RMT_pkru` and the Disabling Counters, specialized by a
/// [`PermissionPolicy`](crate::PermissionPolicy).
///
/// The engine owns every piece of *state*; the policy makes every
/// *decision*, reading that state through a [`PolicyView`].
///
/// The pipeline calls, in order of an instruction's life:
///
/// 1. **rename** — [`rename_wrpkru`](Self::rename_wrpkru) for `WRPKRU`,
///    [`rename_pkru_source`](Self::rename_pkru_source) for every memory
///    instruction / `RDPKRU` (and for `WRPKRU` itself, which uses PKRU as a
///    source purely to order WRPKRUs among themselves, §V-B2);
/// 2. **issue gating** — [`source_ready`](Self::source_ready);
/// 3. **execute** — [`execute_wrpkru`](Self::execute_wrpkru);
///    [`load_check`](Self::load_check) / [`store_check`](Self::store_check)
///    for memory instructions;
/// 4. **retire** — [`retire_wrpkru`](Self::retire_wrpkru),
///    [`fault_check_committed`](Self::fault_check_committed) for replayed
///    loads and checked stores;
/// 5. **squash** — [`checkpoint`](Self::checkpoint) /
///    [`restore`](Self::restore).
#[derive(Debug, Clone)]
pub struct PkruEngine {
    policy: PolicyRef,
    // Static policy properties, cached at construction so the per-access
    // hot paths below skip virtual dispatch when the answer is constant.
    barrier_while_inflight: bool,
    checks_can_fail: bool,
    faults_speculatively: bool,
    config: SpecMpkConfig,
    rob: RobPkru,
    arf: Pkru,
    rmt: Option<PkruTag>,
    counters: DisablingCounters,
    stats: PkruEngineStats,
    // Precomputed per-pkey check outcomes (bit k set = the check *fails*
    // for pkey k) plus the TLB-miss stall decision, refreshed at every
    // state mutation. Sound because policy decisions are required to be
    // pure functions of the `PolicyView`; this turns the per-access hot
    // paths into single bit tests with no virtual dispatch.
    load_fail_mask: u16,
    store_fail_mask: u16,
    tlb_stall_cached: bool,
}

impl PkruEngine {
    /// Creates an engine for `policy`, sizing `ROB_pkru` to the policy's
    /// [`rob_pkru_capacity`](crate::PermissionPolicy::rob_pkru_capacity).
    #[must_use]
    pub fn new(policy: impl Into<PolicyRef>, config: SpecMpkConfig) -> Self {
        let policy = policy.into();
        let capacity = policy.rob_pkru_capacity(&config);
        let mut engine = PkruEngine {
            policy,
            barrier_while_inflight: policy.rename_barrier_while_inflight(),
            checks_can_fail: policy.speculative_checks_can_fail(),
            faults_speculatively: policy.faults_speculatively(),
            config,
            rob: RobPkru::new(capacity),
            arf: Pkru::ALL_ACCESS,
            rmt: None,
            counters: DisablingCounters::new(),
            stats: PkruEngineStats::default(),
            load_fail_mask: 0,
            store_fail_mask: 0,
            tlb_stall_cached: false,
        };
        engine.refresh_cached_checks();
        engine
    }

    /// Recomputes the cached per-pkey check masks and the TLB-miss stall
    /// decision from the current rename state. Called after every mutation
    /// of that state (WRPKRU execute/retire/squash, committed-PKRU reset),
    /// so the hot-path checks below never consult the policy directly.
    fn refresh_cached_checks(&mut self) {
        if !self.checks_can_fail {
            // Static property: no check of this policy ever fails.
            self.load_fail_mask = 0;
            self.store_fail_mask = 0;
            self.tlb_stall_cached = false;
            return;
        }
        let (mut load_fail, mut store_fail) = (0u16, 0u16);
        for pkey in Pkey::all() {
            let bit = 1u16 << pkey.index();
            if !self.policy.load_check(self.view(), pkey) {
                load_fail |= bit;
            }
            if !self.policy.store_check(self.view(), pkey) {
                store_fail |= bit;
            }
        }
        self.load_fail_mask = load_fail;
        self.store_fail_mask = store_fail;
        self.tlb_stall_cached = self.policy.tlb_miss_must_stall(self.view());
    }

    /// The policy this engine implements.
    #[must_use]
    pub fn policy(&self) -> PolicyRef {
        self.policy
    }

    /// The read-only view of the rename state the policy decides over.
    fn view(&self) -> PolicyView<'_> {
        PolicyView::new(&self.rob, self.arf, &self.counters)
    }

    /// The structure configuration.
    #[must_use]
    pub fn config(&self) -> SpecMpkConfig {
        self.config
    }

    /// The committed PKRU (`ARF_pkru`).
    #[must_use]
    #[inline]
    pub fn committed(&self) -> Pkru {
        self.arf
    }

    /// Sets the committed PKRU directly (process start-up state).
    pub fn set_committed(&mut self, pkru: Pkru) {
        assert!(self.rob.is_empty(), "cannot reset PKRU with WRPKRUs in flight");
        self.arf = pkru;
        self.refresh_cached_checks();
    }

    /// Whether any WRPKRU is in flight. Under the `Serialized` policy the
    /// frontend stalls *all* renames while this holds.
    #[must_use]
    #[inline]
    pub fn wrpkru_inflight(&self) -> bool {
        !self.rob.is_empty()
    }

    /// Whether the policy's serialization barrier is currently blocking
    /// *all* renames: an in-flight WRPKRU under a policy that serializes
    /// (the stall-after half of `Serialized`'s drain/stall barrier).
    #[must_use]
    #[inline]
    pub fn rename_barrier_active(&self) -> bool {
        self.barrier_while_inflight && self.wrpkru_inflight()
    }

    /// Whether a failed WRPKRU rename is attributable to the serialization
    /// barrier (rather than a full `ROB_pkru`).
    #[must_use]
    #[inline]
    pub fn wrpkru_rename_serializes(&self) -> bool {
        self.barrier_while_inflight
    }

    /// Whether a `WRPKRU` may rename this cycle.
    ///
    /// * `Serialized`: only when it would be the oldest in-flight
    ///   instruction (`older_inflight == 0`) — the drain-before barrier.
    /// * Speculative policies: whenever `ROB_pkru` has a free entry.
    #[must_use]
    pub fn can_rename_wrpkru(&self, older_inflight: usize) -> bool {
        self.policy.can_rename_wrpkru(self.view(), older_inflight)
    }

    /// Whether a `RDPKRU` may rename this cycle. SpecMPK serializes RDPKRU
    /// against in-flight WRPKRUs so it can read `ARF_pkru` (§V-C6);
    /// `Serialized` gets the same property from its global barrier;
    /// `NonSecureSpec` reads the renamed value and needs no stall.
    #[must_use]
    pub fn can_rename_rdpkru(&self, older_inflight: usize) -> bool {
        self.policy.can_rename_rdpkru(self.view(), older_inflight)
    }

    /// Renames a `WRPKRU`: allocates its `ROB_pkru` entry and updates
    /// `RMT_pkru`. Returns `None` when the buffer is full (frontend stall —
    /// the Fig. 11 sensitivity effect).
    pub fn rename_wrpkru(&mut self) -> Option<PkruTag> {
        let tag = self.rob.allocate()?;
        self.rmt = Some(tag);
        self.stats.wrpkru_renamed += 1;
        self.stats.rob_pkru_high_water = self.stats.rob_pkru_high_water.max(self.rob.len() as u64);
        self.refresh_cached_checks();
        Some(tag)
    }

    /// Renames the implicit PKRU *source* operand of a memory instruction,
    /// `RDPKRU`, or `WRPKRU`.
    #[must_use]
    #[inline]
    pub fn rename_pkru_source(&self) -> PkruSource {
        self.policy.rename_pkru_source(self.rmt)
    }

    /// Whether the PKRU source operand is available — the issue gate that
    /// enforces design principles 1 and 2 (§V-A): WRPKRUs execute in order
    /// among themselves, and memory instructions execute only after all
    /// prior WRPKRUs have executed.
    #[must_use]
    #[inline]
    pub fn source_ready(&self, source: PkruSource) -> bool {
        match source {
            PkruSource::Committed => true,
            PkruSource::Renamed(tag) => self.rob.value_ready(tag),
        }
    }

    /// The PKRU value a `source` operand reads: the in-flight value if
    /// still buffered, else the committed one. Only `NonSecureSpec` fault
    /// checks and `RDPKRU` results consume this.
    #[must_use]
    #[inline]
    pub fn resolve_value(&self, source: PkruSource) -> Pkru {
        match source {
            PkruSource::Committed => self.arf,
            PkruSource::Renamed(tag) => self.rob.value_of(tag).unwrap_or(self.arf),
        }
    }

    /// Executes a `WRPKRU`: records its value and increments the Disabling
    /// Counters for every pkey it disables (§V-C1).
    pub fn execute_wrpkru(&mut self, tag: PkruTag, value: Pkru) {
        let ad = value.access_disable_bitmap();
        let wd = value.write_disable_bitmap();
        self.rob.set_value(tag, value, ad, wd);
        self.counters.increment(ad, wd);
        self.refresh_cached_checks();
    }

    /// The **PKRU Load Check** (§V-C2): may a load to a page colored `pkey`
    /// execute speculatively and update microarchitectural state?
    ///
    /// Fails — meaning the load must stall until it reaches the Active-List
    /// head — iff the WRPKRU-window contains *any* Access-Disable for the
    /// key: `AccessDisableCounter > 0` or committed AD (covers all three
    /// scenarios of Fig. 7). Always passes for the non-SpecMPK policies
    /// (Serialized has no speculative window; NonSecure is deliberately
    /// unprotected).
    #[inline]
    pub fn load_check(&mut self, pkey: Pkey) -> bool {
        let fail = self.load_fail_mask & (1u16 << pkey.index()) != 0;
        if fail {
            self.stats.load_check_failures += 1;
        }
        !fail
    }

    /// The **PKRU Store Check** (§V-C2): may a store to `pkey` forward its
    /// data to younger loads?
    ///
    /// Fails iff either Disabling Counter for the key is non-zero or the
    /// committed PKRU has AD *or* WD set — blocking the speculative
    /// store-to-load buffer-overflow channel (§III-C). The store still
    /// executes (address generation proceeds, reducing memory-dependence
    /// squashes), it just may not forward.
    #[inline]
    pub fn store_check(&mut self, pkey: Pkey) -> bool {
        let fail = self.store_fail_mask & (1u16 << pkey.index()) != 0;
        if fail {
            self.stats.store_check_failures += 1;
        }
        !fail
    }

    /// Whether a memory access that *misses the TLB* must stall to the
    /// Active-List head (§V-C5): with the pkey unknown before the walk, any
    /// disabling permission anywhere in the WRPKRU-window forces the
    /// conservative stall (and defers the TLB fill).
    #[must_use]
    #[inline]
    pub fn tlb_miss_must_stall(&self) -> bool {
        self.tlb_stall_cached
    }

    /// Speculative fault determination, delegated to the policy:
    /// `NonSecureSpec` (and the degenerate `Serialized` case, where the
    /// source is always committed) checks the access against the
    /// instruction's *renamed* PKRU; SpecMPK never faults speculatively —
    /// instructions that might fault fail the checks above and are
    /// re-checked at the head.
    ///
    /// # Errors
    ///
    /// Returns the fault to be *recorded* in the Active-List entry and
    /// raised only if the instruction retires.
    #[inline]
    pub fn fault_check_speculative(
        &self,
        source: PkruSource,
        pkey: Pkey,
        kind: AccessKind,
    ) -> Result<(), ProtectionFault> {
        if !self.faults_speculatively {
            return Ok(());
        }
        self.fault_check_speculative_slow(source, pkey, kind)
    }

    /// The virtual-dispatch half of the speculative fault check, split out
    /// so the cached-flag fast path above stays small enough to inline.
    fn fault_check_speculative_slow(
        &self,
        source: PkruSource,
        pkey: Pkey,
        kind: AccessKind,
    ) -> Result<(), ProtectionFault> {
        self.policy.fault_check_speculative(self.view(), source, pkey, kind)
    }

    /// Precise fault determination against the committed PKRU, used when a
    /// stalled load replays at the Active-List head or a forwarding-barred
    /// store re-verifies before retirement (§V-C4 — the *precise
    /// non-speculative access control* property).
    ///
    /// # Errors
    ///
    /// Returns the protection fault to raise architecturally.
    pub fn fault_check_committed(
        &self,
        pkey: Pkey,
        kind: AccessKind,
    ) -> Result<(), ProtectionFault> {
        self.arf.check(pkey, kind)
    }

    /// Retires the oldest `WRPKRU`: commits its value to `ARF_pkru`,
    /// decrements the counters it incremented, and clears `RMT_pkru` if it
    /// still points at this entry. Returns the newly committed PKRU.
    ///
    /// # Panics
    ///
    /// Panics if no WRPKRU is in flight.
    pub fn retire_wrpkru(&mut self) -> Pkru {
        let (tag, value, ad, wd) = self.rob.retire_head().expect("no WRPKRU to retire");
        self.counters.decrement(ad, wd);
        self.arf = value;
        if self.rmt == Some(tag) {
            self.rmt = None;
        }
        self.stats.wrpkru_retired += 1;
        self.policy.on_retire_wrpkru(value);
        self.refresh_cached_checks();
        value
    }

    /// Takes a checkpoint for a (potentially mispredicting) branch.
    #[must_use]
    pub fn checkpoint(&self) -> PkruCheckpoint {
        PkruCheckpoint { first_squashed: self.rob.next_tag(), rmt: self.rmt }
    }

    /// Restores a checkpoint on misprediction: removes younger `ROB_pkru`
    /// entries, decrementing the counters of those that had executed, and
    /// restores `RMT_pkru`.
    pub fn restore(&mut self, checkpoint: PkruCheckpoint) {
        let before = self.rob.len();
        let undone = self.rob.squash_from(checkpoint.first_squashed);
        for (ad, wd) in undone {
            self.counters.decrement(ad, wd);
        }
        self.stats.wrpkru_squashed += (before - self.rob.len()) as u64;
        self.rmt = checkpoint.rmt;
        self.policy.on_restore();
        self.refresh_cached_checks();
    }

    /// Discards *all* speculative PKRU state — used on a full pipeline
    /// flush (a fault reaching retirement). Every in-flight WRPKRU is
    /// younger than the faulting head instruction, so all of them squash.
    pub fn flush_speculative(&mut self) {
        let oldest = PkruTag(0);
        let before = self.rob.len();
        let undone = self.rob.squash_from(oldest);
        for (ad, wd) in undone {
            self.counters.decrement(ad, wd);
        }
        self.stats.wrpkru_squashed += (before - self.rob.len()) as u64;
        self.rmt = None;
        self.policy.on_flush();
        self.refresh_cached_checks();
    }

    /// Records one frontend stall cycle attributable to a full `ROB_pkru`.
    pub fn note_rob_full_stall(&mut self) {
        self.stats.rob_full_stall_cycles += 1;
    }

    /// Records `n` frontend stall cycles attributable to a full `ROB_pkru`
    /// at once (the idle-cycle bulk advance replicating a frozen stall).
    pub fn note_rob_full_stalls(&mut self, n: u64) {
        self.stats.rob_full_stall_cycles += n;
    }

    /// Number of in-flight WRPKRUs.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.rob.len()
    }

    /// A view of the Disabling Counters (inspection/testing).
    #[must_use]
    pub fn counters(&self) -> &DisablingCounters {
        &self.counters
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> PkruEngineStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WrpkruPolicy;

    fn k(i: u8) -> Pkey {
        Pkey::new(i).unwrap()
    }

    fn specmpk() -> PkruEngine {
        PkruEngine::new(WrpkruPolicy::SpecMpk, SpecMpkConfig::default())
    }

    #[test]
    fn fresh_engine_reads_all_access() {
        let e = specmpk();
        assert_eq!(e.committed(), Pkru::ALL_ACCESS);
        assert_eq!(e.rename_pkru_source(), PkruSource::Committed);
        assert!(!e.wrpkru_inflight());
    }

    #[test]
    fn rename_updates_rmt_and_consumers_depend_on_it() {
        let mut e = specmpk();
        let tag = e.rename_wrpkru().unwrap();
        assert_eq!(e.rename_pkru_source(), PkruSource::Renamed(tag));
        // Not executed yet: consumers must wait.
        assert!(!e.source_ready(PkruSource::Renamed(tag)));
        e.execute_wrpkru(tag, Pkru::ALL_ACCESS);
        assert!(e.source_ready(PkruSource::Renamed(tag)));
    }

    #[test]
    fn scenario_1_latest_update_disables() {
        // Fig. 7 scenario 1: the in-flight update disables the key.
        let mut e = specmpk();
        let tag = e.rename_wrpkru().unwrap();
        e.execute_wrpkru(tag, Pkru::ALL_ACCESS.with_access_disabled(k(1), true));
        assert!(!e.load_check(k(1)));
        assert!(e.load_check(k(2)));
    }

    #[test]
    fn scenario_2_committed_disables_inflight_enables() {
        // Fig. 7 scenario 2: committed AD, newest in-flight enables — the
        // Spectre-gadget shape. Load must still stall.
        let mut e = specmpk();
        e.set_committed(Pkru::ALL_ACCESS.with_access_disabled(k(1), true));
        let tag = e.rename_wrpkru().unwrap();
        e.execute_wrpkru(tag, Pkru::ALL_ACCESS); // transient enable
        assert!(!e.load_check(k(1)));
    }

    #[test]
    fn scenario_3_middle_update_disables() {
        // Fig. 7 scenario 3: committed enables, an older in-flight WRPKRU
        // disables, the newest re-enables.
        let mut e = specmpk();
        let t1 = e.rename_wrpkru().unwrap();
        e.execute_wrpkru(t1, Pkru::ALL_ACCESS.with_access_disabled(k(1), true));
        let t2 = e.rename_wrpkru().unwrap();
        e.execute_wrpkru(t2, Pkru::ALL_ACCESS);
        assert!(!e.load_check(k(1)), "aggregated window must catch the middle disable");
    }

    #[test]
    fn retirement_drains_counters_and_commits() {
        let mut e = specmpk();
        let key = k(3);
        let t1 = e.rename_wrpkru().unwrap();
        e.execute_wrpkru(t1, Pkru::ALL_ACCESS.with_access_disabled(key, true));
        let t2 = e.rename_wrpkru().unwrap();
        e.execute_wrpkru(t2, Pkru::ALL_ACCESS);

        assert!(!e.load_check(key));
        let committed = e.retire_wrpkru();
        assert!(committed.access_disabled(key));
        // Window still fails: committed AD.
        assert!(!e.load_check(key));
        let committed = e.retire_wrpkru();
        assert_eq!(committed, Pkru::ALL_ACCESS);
        // Fully drained and enabled.
        assert!(e.load_check(key));
        assert!(e.counters().all_zero());
    }

    #[test]
    fn squash_undoes_executed_updates_only() {
        let mut e = specmpk();
        let key = k(5);
        let cp = e.checkpoint();
        let t1 = e.rename_wrpkru().unwrap();
        e.execute_wrpkru(t1, Pkru::ALL_ACCESS.with_write_disabled(key, true));
        let _t2 = e.rename_wrpkru().unwrap(); // never executes
        assert!(!e.store_check(key));
        e.restore(cp);
        assert!(e.counters().all_zero());
        assert!(e.store_check(key));
        assert_eq!(e.rename_pkru_source(), PkruSource::Committed);
        assert_eq!(e.stats().wrpkru_squashed, 2);
    }

    #[test]
    fn store_check_blocks_on_write_disable() {
        let mut e = specmpk();
        let key = k(2);
        let t = e.rename_wrpkru().unwrap();
        e.execute_wrpkru(t, Pkru::ALL_ACCESS.with_write_disabled(key, true));
        assert!(!e.store_check(key), "WD in window must bar forwarding");
        assert!(e.load_check(key), "WD alone does not stall loads");
    }

    #[test]
    fn serialized_policy_gates_rename_on_oldest() {
        let e = PkruEngine::new(WrpkruPolicy::Serialized, SpecMpkConfig::default());
        assert!(e.can_rename_wrpkru(0));
        assert!(!e.can_rename_wrpkru(5));
    }

    #[test]
    fn serialized_blocks_second_wrpkru_until_retire() {
        let mut e = PkruEngine::new(WrpkruPolicy::Serialized, SpecMpkConfig::default());
        let t = e.rename_wrpkru().unwrap();
        assert!(!e.can_rename_wrpkru(0), "one in flight already");
        e.execute_wrpkru(t, Pkru::ALL_ACCESS);
        e.retire_wrpkru();
        assert!(e.can_rename_wrpkru(0));
    }

    #[test]
    fn nonsecure_checks_always_pass() {
        let mut e = PkruEngine::new(WrpkruPolicy::NonSecureSpec, SpecMpkConfig::default());
        e.set_committed(Pkru::LINUX_DEFAULT);
        let t = e.rename_wrpkru().unwrap();
        e.execute_wrpkru(t, Pkru::LINUX_DEFAULT);
        assert!(e.load_check(k(1)));
        assert!(e.store_check(k(1)));
        assert!(!e.tlb_miss_must_stall());
    }

    #[test]
    fn nonsecure_speculative_fault_uses_renamed_value() {
        let mut e = PkruEngine::new(WrpkruPolicy::NonSecureSpec, SpecMpkConfig::default());
        e.set_committed(Pkru::ALL_ACCESS.with_access_disabled(k(1), true));
        let t = e.rename_wrpkru().unwrap();
        e.execute_wrpkru(t, Pkru::ALL_ACCESS); // transient enable
        let src = PkruSource::Renamed(t);
        // Renamed value permits: no speculative fault → the leak.
        assert!(e.fault_check_speculative(src, k(1), AccessKind::Read).is_ok());
        // Committed value forbids.
        assert!(e.fault_check_committed(k(1), AccessKind::Read).is_err());
    }

    #[test]
    fn specmpk_rdpkru_serializes_against_inflight_wrpkru() {
        let mut e = specmpk();
        assert!(e.can_rename_rdpkru(3), "no WRPKRU in flight: free to rename");
        let _ = e.rename_wrpkru().unwrap();
        assert!(!e.can_rename_rdpkru(0));
    }

    #[test]
    fn rob_full_blocks_rename_at_configured_size() {
        let mut e = PkruEngine::new(
            WrpkruPolicy::SpecMpk,
            SpecMpkConfig { rob_pkru_size: 2, store_queue_size: 72 },
        );
        assert!(e.rename_wrpkru().is_some());
        assert!(e.rename_wrpkru().is_some());
        assert!(!e.can_rename_wrpkru(0));
        assert!(e.rename_wrpkru().is_none());
        e.note_rob_full_stall();
        assert_eq!(e.stats().rob_full_stall_cycles, 1);
    }

    #[test]
    fn tlb_miss_stall_tracks_window_state() {
        let mut e = specmpk();
        assert!(!e.tlb_miss_must_stall(), "clean window: no stall");
        let t = e.rename_wrpkru().unwrap();
        e.execute_wrpkru(t, Pkru::ALL_ACCESS.with_access_disabled(k(9), true));
        assert!(e.tlb_miss_must_stall(), "disable in flight: conservative stall");
        e.retire_wrpkru();
        assert!(e.tlb_miss_must_stall(), "committed disable: still stalls");
    }

    #[test]
    fn stats_count_check_failures() {
        let mut e = specmpk();
        let t = e.rename_wrpkru().unwrap();
        e.execute_wrpkru(
            t,
            Pkru::ALL_ACCESS.with_access_disabled(k(1), true).with_write_disabled(k(2), true),
        );
        assert!(!e.load_check(k(1)));
        assert!(!e.store_check(k(2)));
        let s = e.stats();
        assert_eq!(s.load_check_failures, 1);
        assert_eq!(s.store_check_failures, 1);
        assert_eq!(s.wrpkru_renamed, 1);
    }
}
