//! The SpecMPK mechanism (paper §V): speculative, secure execution of the
//! `WRPKRU` permission-update instruction.
//!
//! This crate implements the paper's contribution as a self-contained,
//! pipeline-agnostic state machine — the [`PkruEngine`] — that the
//! out-of-order core (`specmpk-ooo`) drives at rename, execute, retire and
//! squash. Three policies are provided ([`WrpkruPolicy`]):
//!
//! * **`Serialized`** — the baseline: `WRPKRU` is a full serialization
//!   barrier (renames only when it is the oldest in-flight instruction, and
//!   blocks younger renames until it retires), matching Intel's
//!   implementation and gem5's treatment (§II-A3).
//! * **`NonSecureSpec`** — PKRU is renamed and `WRPKRU` executes fully
//!   speculatively with *no* side-channel protection; memory instructions
//!   check only their renamed (youngest preceding) PKRU. This is the
//!   performance upper bound and the attack victim of §IX-C.
//! * **`SpecMpk`** — the paper's design: a dedicated reorder buffer for
//!   PKRU values ([`RobPkru`]), a committed register `ARF_pkru`, a one-entry
//!   rename map `RMT_pkru`, and per-pkey [`DisablingCounters`] that
//!   aggregate every Access-/Write-Disable update in the *WRPKRU-window*.
//!   Loads failing the **PKRU Load Check** stall until they are
//!   non-squashable; stores failing the **PKRU Store Check** execute but
//!   may not forward to younger loads (§V-C2).
//!
//! The crate also contains the analytic hardware-cost model of §VIII
//! ([`hardware_cost`]), which reproduces the paper's 93-byte figure.
//!
//! # Examples
//!
//! ```
//! use specmpk_core::{PkruEngine, SpecMpkConfig, WrpkruPolicy};
//! use specmpk_mpk::{Pkey, Pkru};
//!
//! let mut engine = PkruEngine::new(WrpkruPolicy::SpecMpk, SpecMpkConfig::default());
//! let key = Pkey::new(1)?;
//!
//! // Rename and execute a WRPKRU that disables access to pkey 1.
//! let tag = engine.rename_wrpkru().expect("ROB_pkru has space");
//! engine.execute_wrpkru(tag, Pkru::ALL_ACCESS.with_access_disabled(key, true));
//!
//! // A speculative load to pkey 1 now fails the PKRU Load Check…
//! assert!(!engine.load_check(key));
//! // …while loads to other keys proceed speculatively.
//! assert!(engine.load_check(Pkey::new(2)?));
//! # Ok::<(), specmpk_mpk::InvalidPkeyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod engine;
mod hwcost;
pub mod policy;
mod rob_pkru;

pub use counters::DisablingCounters;
pub use engine::{PkruCheckpoint, PkruEngine, PkruEngineStats, PkruSource};
pub use hwcost::{hardware_cost, HardwareCost};
pub use policy::{
    registry, NonSecureSpec, PermissionPolicy, PolicyRef, PolicyView, Serialized, SpecMpk,
};
pub use rob_pkru::{PkruTag, RobPkru};

use std::fmt;

/// Which WRPKRU microarchitecture to simulate (§VII evaluates all three).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WrpkruPolicy {
    /// Baseline: WRPKRU fully serializes the pipeline.
    Serialized,
    /// Speculative WRPKRU with no side-channel protection (upper bound).
    NonSecureSpec,
    /// The paper's secure speculative design.
    #[default]
    SpecMpk,
}

impl WrpkruPolicy {
    /// All policies, in the order the paper's figures present them.
    #[must_use]
    pub fn all() -> [WrpkruPolicy; 3] {
        [WrpkruPolicy::Serialized, WrpkruPolicy::NonSecureSpec, WrpkruPolicy::SpecMpk]
    }
}

impl fmt::Display for WrpkruPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WrpkruPolicy::Serialized => f.write_str("Serialized"),
            WrpkruPolicy::NonSecureSpec => f.write_str("NonSecure SpecMPK"),
            WrpkruPolicy::SpecMpk => f.write_str("SpecMPK"),
        }
    }
}

/// Configuration of the SpecMPK hardware structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpecMpkConfig {
    /// Number of `ROB_pkru` entries. Table III uses 8; Fig. 11 sweeps
    /// {2, 4, 8} (Active-List ratios 1/96, 1/48, 1/24).
    pub rob_pkru_size: usize,
    /// Store-queue entries (only used by the §VIII cost model: one
    /// forwarding-disable bit per entry).
    pub store_queue_size: usize,
}

impl Default for SpecMpkConfig {
    fn default() -> Self {
        SpecMpkConfig { rob_pkru_size: 8, store_queue_size: 72 }
    }
}
