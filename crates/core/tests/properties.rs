//! Property-based tests: the PKRU engine's counters always agree with a
//! naive model of the in-flight window, across arbitrary operation
//! sequences.

// Gated so the workspace still builds/tests with --no-default-features.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use specmpk_core::{PkruEngine, PkruTag, SpecMpkConfig, WrpkruPolicy};
use specmpk_mpk::{Pkey, Pkru};

/// An abstract operation on the engine.
#[derive(Debug, Clone)]
enum Op {
    Rename,
    /// Execute the oldest unexecuted in-flight WRPKRU with this PKRU value.
    ExecuteOldest(u32),
    RetireHead,
    /// Checkpoint now; the checkpoint is restored by a later `Restore`.
    Checkpoint,
    Restore,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => Just(Op::Rename),
            3 => any::<u32>().prop_map(Op::ExecuteOldest),
            2 => Just(Op::RetireHead),
            1 => Just(Op::Checkpoint),
            1 => Just(Op::Restore),
        ],
        1..120,
    )
}

/// A naive reference model of the WRPKRU-window.
#[derive(Default)]
struct Model {
    /// In-flight updates, oldest first: (tag, executed value).
    inflight: Vec<(PkruTag, Option<Pkru>)>,
    committed: Pkru,
}

impl Model {
    fn window_access_disabled(&self, key: Pkey) -> bool {
        self.committed.access_disabled(key)
            || self.inflight.iter().any(|(_, v)| v.is_some_and(|p| p.access_disabled(key)))
    }

    fn window_write_disabled_any(&self, key: Pkey) -> bool {
        self.committed.access_disabled(key)
            || self.committed.write_disabled(key)
            || self
                .inflight
                .iter()
                .any(|(_, v)| v.is_some_and(|p| p.access_disabled(key) || p.write_disabled(key)))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After any operation sequence, SpecMPK's load/store checks agree with
    /// the naive window model for every pkey.
    #[test]
    fn checks_agree_with_naive_window_model(ops in arb_ops()) {
        let mut engine = PkruEngine::new(WrpkruPolicy::SpecMpk, SpecMpkConfig::default());
        let mut model = Model::default();
        type Checkpoint = (specmpk_core::PkruCheckpoint, Vec<(PkruTag, Option<Pkru>)>);
        let mut checkpoints: Vec<Checkpoint> = Vec::new();

        for op in ops {
            match op {
                Op::Rename => {
                    if let Some(tag) = engine.rename_wrpkru() {
                        model.inflight.push((tag, None));
                    }
                }
                Op::ExecuteOldest(bits) => {
                    if let Some(slot) = model.inflight.iter_mut().find(|(_, v)| v.is_none()) {
                        let value = Pkru::from_bits(bits);
                        engine.execute_wrpkru(slot.0, value);
                        slot.1 = Some(value);
                    }
                }
                Op::RetireHead => {
                    if !model.inflight.is_empty() && model.inflight[0].1.is_some() {
                        let committed = engine.retire_wrpkru();
                        let (_, v) = model.inflight.remove(0);
                        prop_assert_eq!(Some(committed), v);
                        model.committed = committed;
                    }
                }
                Op::Checkpoint => {
                    checkpoints.push((engine.checkpoint(), model.inflight.clone()));
                }
                Op::Restore => {
                    if let Some((cp, snapshot)) = checkpoints.pop() {
                        engine.restore(cp);
                        // Keep only entries that were in flight at the
                        // checkpoint *and* have not retired since.
                        let live: Vec<PkruTag> =
                            model.inflight.iter().map(|(t, _)| *t).collect();
                        model.inflight = snapshot
                            .into_iter()
                            .filter(|(t, _)| live.contains(t))
                            .map(|(t, _)| {
                                // The executed-ness may have advanced since the
                                // checkpoint; take the current view.
                                model
                                    .inflight
                                    .iter()
                                    .find(|(t2, _)| *t2 == t)
                                    .copied()
                                    .expect("filtered to live tags")
                            })
                            .collect();
                        // Invalidate any checkpoints younger than this one.
                        checkpoints.retain(|(c, _)| c != &cp);
                    }
                }
            }

            // Invariant: engine checks == naive model, for every key.
            for key in Pkey::all() {
                prop_assert_eq!(
                    engine.load_check(key),
                    !model.window_access_disabled(key),
                    "load check diverged for {}", key
                );
                prop_assert_eq!(
                    engine.store_check(key),
                    !model.window_write_disabled_any(key),
                    "store check diverged for {}", key
                );
            }
            prop_assert_eq!(engine.committed(), model.committed);
            prop_assert_eq!(engine.inflight(), model.inflight.len());
        }
    }

    /// Draining the pipeline (execute + retire everything) always leaves the
    /// counters at zero and the last value committed.
    #[test]
    fn full_drain_zeroes_counters(values in prop::collection::vec(any::<u32>(), 1..20)) {
        let mut engine = PkruEngine::new(
            WrpkruPolicy::SpecMpk,
            SpecMpkConfig { rob_pkru_size: 32, store_queue_size: 72 },
        );
        let mut tags = Vec::new();
        for &v in &values {
            let tag = engine.rename_wrpkru().expect("sized for the test");
            engine.execute_wrpkru(tag, Pkru::from_bits(v));
            tags.push(tag);
        }
        for _ in &values {
            engine.retire_wrpkru();
        }
        prop_assert!(engine.counters().all_zero());
        prop_assert_eq!(engine.committed().bits(), *values.last().unwrap());
        prop_assert!(!engine.wrpkru_inflight());
    }

    /// Checkpoint/restore around a fully-speculative burst is an exact
    /// inverse: state is bit-identical afterwards.
    #[test]
    fn restore_is_exact_inverse(values in prop::collection::vec(any::<u32>(), 1..8)) {
        let mut engine = PkruEngine::new(WrpkruPolicy::SpecMpk, SpecMpkConfig::default());
        let committed_before = engine.committed();
        let cp = engine.checkpoint();
        for &v in &values {
            if let Some(tag) = engine.rename_wrpkru() {
                engine.execute_wrpkru(tag, Pkru::from_bits(v));
            }
        }
        engine.restore(cp);
        prop_assert!(engine.counters().all_zero());
        prop_assert_eq!(engine.committed(), committed_before);
        prop_assert_eq!(engine.inflight(), 0);
        for key in Pkey::all() {
            prop_assert!(engine.load_check(key));
        }
    }
}
