//! Proof-of-concept speculative attacks on MPK permission updates
//! (paper §IX-C and §III-C).
//!
//! Each attack builds a self-contained victim+attacker [`Program`] and runs
//! it on the out-of-order core under a chosen policy ([`PolicyRef`]); the
//! **flush+reload receiver** then probes the simulated cache from outside
//! the program (exactly what Fig. 13 plots: per-index access latency of the
//! probe array after the attack). Three PoCs are provided:
//!
//! * [`spectre_v1`] — Listing 1 / Fig. 12(c): a bounds-check branch is
//!   trained taken, then mispredicts; the transient path executes a
//!   `WRPKRU` that *enables* access to the secret-colored page and leaks
//!   `array1[X]` through `array2[array1[X] * 512]`;
//! * [`spectre_bti`] — Fig. 12(d): an indirect call's BTB entry is trained
//!   to a gadget containing the enabling `WRPKRU`, then the architectural
//!   target changes; the stale BTB prediction transiently executes the
//!   gadget;
//! * [`store_forward_overflow`] — §III-C: a transient write-enable lets a
//!   wrong-path store forward a poisoned value to a younger load
//!   (speculative buffer overflow, Kiriansky & Waldspurger \[28\]); SpecMPK
//!   blocks the forwarding.
//!
//! The attack drivers follow real-world Spectre PoC discipline: **training
//! and attack run in the same loop with branchless argument selection**, so
//! the victim branch sees an identical global-history context on the attack
//! iteration and the direction predictor's trained state applies.
//!
//! Expected outcome (asserted by the integration tests and reproduced by
//! the `fig13` experiment): **NonSecure SpecMPK leaks** (the secret index
//! is cache-hot), **SpecMPK and Serialized do not**.
//!
//! # Examples
//!
//! ```
//! use specmpk_attacks::{spectre_v1, run_attack, AttackKind};
//! use specmpk_core::PolicyRef;
//!
//! let attack = spectre_v1(101, 72);
//! let outcome = run_attack(&attack, PolicyRef::NONSECURE_SPEC);
//! assert!(outcome.hot_indices().contains(&101));       // leaked
//!
//! let outcome = run_attack(&attack, PolicyRef::SPEC_MPK);
//! assert!(!outcome.hot_indices().contains(&101));      // blocked
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use specmpk_core::PolicyRef;
use specmpk_isa::{AluOp, Assembler, BranchCond, DataSegment, MemWidth, Operand, Program, Reg};
use specmpk_mpk::{Pkey, Pkru};
use specmpk_ooo::{Core, ExitReason, SimConfig};
use specmpk_trace::LeakObserver;

/// Which PoC an [`AttackProgram`] implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Conditional-branch misprediction (Spectre-V1-style, Fig. 12(c)).
    SpectreV1,
    /// Indirect-branch target injection (Spectre-BTI-style, Fig. 12(d)).
    SpectreBti,
    /// Speculative store-to-load-forwarding buffer overflow (§III-C).
    StoreForwardOverflow,
}

impl AttackKind {
    /// Stable machine-readable name, used as the row key of the
    /// `security_matrix` artifact and its golden-verdict file.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::SpectreV1 => "spectre_v1",
            AttackKind::SpectreBti => "spectre_bti",
            AttackKind::StoreForwardOverflow => "store_forward_overflow",
        }
    }
}

/// Builds every PoC with its canonical parameters (secret byte 101 and
/// training byte 72 for the Spectre variants — the paper's Fig. 13
/// values — and poison 13 for the store-forwarding overflow): the rows
/// of the policy × attack security matrix.
#[must_use]
pub fn all_attacks() -> Vec<AttackProgram> {
    vec![spectre_v1(101, 72), spectre_bti(101, 72), store_forward_overflow(13)]
}

/// Number of probe-array slots (one per possible byte value).
pub const PROBE_SLOTS: usize = 256;
/// Stride between probe slots in bytes (Fig. 13 plots multiples of 512).
pub const PROBE_STRIDE: u64 = 512;

const ARRAY1_BASE: u64 = 0x20000;
const ARRAY2_BASE: u64 = 0x100000;
const BOUND_ADDR: u64 = 0x30000;
const FNPTR_ADDR: u64 = 0x30008;
const SAFE_BASE: u64 = 0x40000;

const TRAIN_POS: u64 = 1;
const ATTACK_POS: u64 = 8;
const TRAIN_ROUNDS: i64 = 40;

/// A victim+attacker program plus the receiver's probe parameters.
#[derive(Debug, Clone)]
pub struct AttackProgram {
    kind: AttackKind,
    program: Program,
    secret_index: usize,
    train_index: usize,
}

impl AttackProgram {
    /// Which PoC this is.
    #[must_use]
    pub fn kind(&self) -> AttackKind {
        self.kind
    }

    /// The underlying program (inspect or run manually).
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The probe index the attack tries to leak.
    #[must_use]
    pub fn secret_index(&self) -> usize {
        self.secret_index
    }

    /// The probe index touched architecturally (hot in every policy).
    #[must_use]
    pub fn train_index(&self) -> usize {
        self.train_index
    }

    /// The protection key guarding the secret this attack targets: the
    /// `array1` secret page for the Spectre variants, the write-locked
    /// "safe" page for the store-forwarding overflow. The witness-chain
    /// extractor filters the ledger by this pkey.
    #[must_use]
    pub fn secret_pkey(&self) -> Pkey {
        match self.kind {
            AttackKind::SpectreV1 | AttackKind::SpectreBti => secret_pkey(),
            AttackKind::StoreForwardOverflow => Pkey::new(5).expect("static pkey"),
        }
    }
}

/// Result of running an attack: the receiver's per-index reload latencies.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    exit: ExitReason,
    latencies: Vec<u64>,
    threshold: u64,
}

impl AttackOutcome {
    /// Builds an outcome from a measured latency vector and a chosen
    /// hit/miss `threshold`.
    ///
    /// [`run_attack`] picks the threshold as the midpoint between the two
    /// latency populations the receiver can observe — an L1 hit
    /// (`l1d.latency`) and a full DRAM round trip (`l3.latency +
    /// dram_extra_latency`, the L3 lookup that misses plus the memory
    /// access): `(l1d + l3 + dram_extra) / 2`. Any index whose reload
    /// latency is **strictly below** the threshold is classified hot; a
    /// latency exactly *at* the threshold counts as cold, so an
    /// equidistant (ambiguous) measurement never produces a leak verdict.
    /// Callers replaying latencies from another hierarchy, or studying
    /// classifier sensitivity, supply their own threshold here.
    #[must_use]
    pub fn new(exit: ExitReason, latencies: Vec<u64>, threshold: u64) -> Self {
        AttackOutcome { exit, latencies, threshold }
    }

    /// How the victim program exited (should be `Halted`).
    #[must_use]
    pub fn exit(&self) -> &ExitReason {
        &self.exit
    }

    /// Reload latency per probe index — the y-axis of Fig. 13.
    #[must_use]
    pub fn latencies(&self) -> &[u64] {
        &self.latencies
    }

    /// The hit/miss latency threshold used by
    /// [`hot_indices`](AttackOutcome::hot_indices) — see
    /// [`AttackOutcome::new`] for how [`run_attack`] derives it.
    #[must_use]
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Probe indices whose reload latency indicates a cache hit: strictly
    /// below [`threshold`](AttackOutcome::threshold). Ties are cold (see
    /// [`AttackOutcome::new`]).
    #[must_use]
    pub fn hot_indices(&self) -> Vec<usize> {
        self.latencies
            .iter()
            .enumerate()
            .filter(|(_, &l)| l < self.threshold)
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether `index` was leaked into the cache.
    #[must_use]
    pub fn leaked(&self, index: usize) -> bool {
        self.latencies.get(index).is_some_and(|&l| l < self.threshold)
    }
}

fn secret_pkey() -> Pkey {
    Pkey::new(4).expect("static pkey")
}

fn locked_pkru() -> Pkru {
    Pkru::ALL_ACCESS.with_access_disabled(secret_pkey(), true)
}

/// Emits `clflush` over every probe slot, plus the bound and function
/// pointer lines, so the victim's resolution-critical loads are slow and
/// the transient window is wide. Fully unrolled — no conditional branches —
/// so it neither perturbs the global history the victim branch is trained
/// under nor aliases into the victim's PHT entry (a deterministic gshare
/// collision would silently erase the training every iteration). Clobbers
/// T0.
fn emit_flush_probe(asm: &mut Assembler) {
    asm.li(Reg::T0, ARRAY2_BASE as i64);
    for i in 0..PROBE_SLOTS as i32 {
        asm.clflush(Reg::T0, i * PROBE_STRIDE as i32);
    }
    asm.li(Reg::T0, BOUND_ADDR as i64);
    asm.clflush(Reg::T0, 0);
    asm.li(Reg::T0, FNPTR_ADDR as i64);
    asm.clflush(Reg::T0, 0);
}

/// Emits the branchless selector: `A0 := TRAIN_POS`, except on the last
/// iteration (`i == rounds`) where `A0 := ATTACK_POS`. `i` is in S0 and
/// `rounds` in S1; clobbers T3.
fn emit_branchless_arg(asm: &mut Assembler) {
    // T3 := (i < rounds) ? 1 : 0 ; A0 := ATTACK - (ATTACK-TRAIN)*T3.
    asm.alu(AluOp::Sltu, Reg::T3, Reg::S0, Operand::Reg(Reg::S1));
    asm.alu(AluOp::Mul, Reg::T3, Reg::T3, Operand::Imm((ATTACK_POS - TRAIN_POS) as i32));
    asm.li(Reg::A0, ATTACK_POS as i64);
    asm.alu(AluOp::Sub, Reg::A0, Reg::A0, Operand::Reg(Reg::T3));
}

fn attack_segments(secret_value: u8, train_value: u8) -> Vec<DataSegment> {
    // array1: byte TRAIN_POS holds the training value (in bounds), byte
    // ATTACK_POS holds the "secret". Both share one cache line, so the
    // transient secret load is an L1 hit (standard PoC preparation).
    let mut array1 = vec![0u8; 4096];
    array1[TRAIN_POS as usize] = train_value;
    array1[ATTACK_POS as usize] = secret_value;
    let mut vars = vec![0u8; 4096];
    vars[0] = ATTACK_POS as u8; // bound: X = ATTACK_POS is out of bounds
    vec![
        DataSegment {
            base: ARRAY1_BASE,
            size: 4096,
            init: array1,
            pkey: secret_pkey(),
            perms: specmpk_isa::SegmentPerms::RW,
            name: "array1_secret".into(),
        },
        DataSegment::with_bytes("vars", BOUND_ADDR, vars, Pkey::DEFAULT),
        DataSegment::zeroed(
            "array2_probe",
            ARRAY2_BASE,
            PROBE_SLOTS as u64 * PROBE_STRIDE,
            Pkey::DEFAULT,
        ),
        DataSegment::zeroed("stack", 0x7F00_0000, 4096, Pkey::DEFAULT),
    ]
}

/// The attack driver loop shared by the conditional-branch PoCs:
///
/// ```text
/// for i in 0..=rounds {            // identical context every iteration
///     flush(array2, bound, fnptr); // receiver's flush phase
///     A0 = branchless(i);          // TRAIN_POS, last iteration ATTACK_POS
///     call victim;
/// }
/// touch array2[train_value * 512]; // the surviving training footprint
/// halt;
/// ```
fn emit_driver_loop(asm: &mut Assembler, victim: specmpk_isa::Label, train_value: u8) {
    let outer = asm.fresh_label();
    asm.li(Reg::S0, 0);
    asm.li(Reg::S1, TRAIN_ROUNDS);
    asm.bind(outer).expect("fresh");
    emit_flush_probe(asm);
    emit_branchless_arg(asm);
    asm.call(victim);
    asm.addi(Reg::S0, Reg::S0, 1);
    asm.branch(BranchCond::Geu, Reg::S1, Reg::S0, outer);
    // The training index stays architecturally hot (the paper's Fig. 13
    // shows it hot under every policy): re-touch it once after the attack.
    asm.li(Reg::T0, (ARRAY2_BASE + u64::from(train_value) * PROBE_STRIDE) as i64);
    asm.load(Reg::T1, Reg::T0, 0, MemWidth::B);
    asm.halt();
}

/// Builds the Spectre-V1-style PoC (paper Listing 1 / Fig. 12(c)).
///
/// Victim: `if (X < bound) { wrpkru(enable); y = array2[array1[X] * 512];
/// wrpkru(disable); }`. The bound is flushed before every call, so the
/// bounds check resolves slowly; on the final (attack) iteration the branch
/// is predicted not-taken from training and the transient path runs with
/// `X = ATTACK_POS`, whose `array1` byte is `secret_value`.
#[must_use]
pub fn spectre_v1(secret_value: u8, train_value: u8) -> AttackProgram {
    let mut asm = Assembler::new(0x1000);
    let victim = asm.fresh_label();
    let start = asm.fresh_label();

    asm.jump(start);

    // ---- victim(X in A0) ----
    asm.bind(victim).expect("fresh");
    let skip = asm.fresh_label();
    asm.li(Reg::T0, BOUND_ADDR as i64);
    asm.load(Reg::T1, Reg::T0, 0, MemWidth::B); // slow: flushed
    asm.branch(BranchCond::Geu, Reg::A0, Reg::T1, skip); // X >= bound → skip
    asm.set_pkru(Pkru::ALL_ACCESS.bits()); // transient enable on wrong path
    asm.li(Reg::T2, ARRAY1_BASE as i64);
    asm.alu(AluOp::Add, Reg::T2, Reg::T2, Operand::Reg(Reg::A0));
    asm.load(Reg::T3, Reg::T2, 0, MemWidth::B); // secret byte
    asm.alu(AluOp::Sll, Reg::T3, Reg::T3, Operand::Imm(9)); // * 512
    asm.li(Reg::T2, ARRAY2_BASE as i64);
    asm.alu(AluOp::Add, Reg::T2, Reg::T2, Operand::Reg(Reg::T3));
    asm.load(Reg::T4, Reg::T2, 0, MemWidth::B); // transmit
    asm.set_pkru(locked_pkru().bits());
    asm.bind(skip).expect("fresh");
    asm.ret();

    // ---- driver ----
    asm.bind(start).expect("fresh");
    asm.set_pkru(locked_pkru().bits());
    emit_driver_loop(&mut asm, victim, train_value);

    let mut program = Program::new(asm.base(), asm.assemble().expect("labels bound"));
    for seg in attack_segments(secret_value, train_value) {
        program.add_segment(seg);
    }
    AttackProgram {
        kind: AttackKind::SpectreV1,
        program,
        secret_index: secret_value as usize,
        train_index: train_value as usize,
    }
}

/// Builds the Spectre-BTI-style PoC (Fig. 12(d)): the victim makes an
/// indirect call through a function pointer. During training the pointer
/// targets a gadget that (legally) enables access and transmits
/// `array1[X]`; on the attack iteration the pointer is switched
/// (branchlessly) to a benign function, but the pointer line is flushed, so
/// the stale BTB prediction transiently executes the gadget with the
/// attacker's `X`.
#[must_use]
pub fn spectre_bti(secret_value: u8, train_value: u8) -> AttackProgram {
    let mut asm = Assembler::new(0x1000);
    let gadget = asm.fresh_label();
    let benign = asm.fresh_label();
    let victim = asm.fresh_label();
    let start = asm.fresh_label();

    asm.jump(start);

    // ---- gadget(X in A0): enable, transmit array1[X], disable ----
    asm.bind(gadget).expect("fresh");
    asm.set_pkru(Pkru::ALL_ACCESS.bits());
    asm.li(Reg::T2, ARRAY1_BASE as i64);
    asm.alu(AluOp::Add, Reg::T2, Reg::T2, Operand::Reg(Reg::A0));
    asm.load(Reg::T3, Reg::T2, 0, MemWidth::B);
    asm.alu(AluOp::Sll, Reg::T3, Reg::T3, Operand::Imm(9));
    asm.li(Reg::T2, ARRAY2_BASE as i64);
    asm.alu(AluOp::Add, Reg::T2, Reg::T2, Operand::Reg(Reg::T3));
    asm.load(Reg::T4, Reg::T2, 0, MemWidth::B);
    asm.set_pkru(locked_pkru().bits());
    asm.ret();

    // ---- benign(): no memory traffic ----
    asm.bind(benign).expect("fresh");
    asm.ret();

    // ---- victim(X in A0): call (*fnptr)(X) ----
    // A separate victim function gives the indirect call a single static
    // call site (one BTB entry), as in the paper's example.
    asm.bind(victim).expect("fresh");
    asm.addi(Reg::SP, Reg::SP, -16);
    asm.store(Reg::RA, Reg::SP, 8, MemWidth::D);
    asm.li(Reg::T0, FNPTR_ADDR as i64);
    asm.load(Reg::T1, Reg::T0, 0, MemWidth::D); // slow: flushed
    asm.jalr(Reg::RA, Reg::T1);
    asm.load(Reg::RA, Reg::SP, 8, MemWidth::D);
    asm.addi(Reg::SP, Reg::SP, 16);
    asm.ret();

    // ---- driver ----
    asm.bind(start).expect("fresh");
    let gadget_addr = asm.address_of(gadget).expect("bound");
    let benign_addr = asm.address_of(benign).expect("bound");
    asm.set_pkru(locked_pkru().bits());
    // Same-context loop; additionally store the (branchlessly selected)
    // pointer target each iteration: gadget while training, benign on the
    // attack iteration.
    let outer = asm.fresh_label();
    asm.li(Reg::S0, 0);
    asm.li(Reg::S1, TRAIN_ROUNDS);
    asm.bind(outer).expect("fresh");
    // T3 := training? 1 : 0 ; ptr := benign + (gadget-benign)*T3. The
    // store happens *before* the long flush block so it has drained by the
    // time the block's final fnptr clflush executes (clflush orders after
    // older same-line stores, and the 256-slot flush gives the flush ample
    // time to land before the victim's pointer load).
    asm.alu(AluOp::Sltu, Reg::T3, Reg::S0, Operand::Reg(Reg::S1));
    asm.li(
        Reg::T4,
        i64::try_from(gadget_addr).expect("small") - i64::try_from(benign_addr).expect("small"),
    );
    asm.alu(AluOp::Mul, Reg::T3, Reg::T3, Operand::Reg(Reg::T4));
    asm.li(Reg::T4, benign_addr as i64);
    asm.alu(AluOp::Add, Reg::T4, Reg::T4, Operand::Reg(Reg::T3));
    asm.li(Reg::T0, FNPTR_ADDR as i64);
    asm.store(Reg::T4, Reg::T0, 0, MemWidth::D);
    emit_flush_probe(&mut asm);
    emit_branchless_arg(&mut asm);
    asm.call(victim);
    asm.addi(Reg::S0, Reg::S0, 1);
    asm.branch(BranchCond::Geu, Reg::S1, Reg::S0, outer);
    asm.li(Reg::T0, (ARRAY2_BASE + u64::from(train_value) * PROBE_STRIDE) as i64);
    asm.load(Reg::T1, Reg::T0, 0, MemWidth::B);
    asm.halt();

    let mut program = Program::new(asm.base(), asm.assemble().expect("labels bound"));
    for seg in attack_segments(secret_value, train_value) {
        program.add_segment(seg);
    }
    AttackProgram {
        kind: AttackKind::SpectreBti,
        program,
        secret_index: secret_value as usize,
        train_index: train_value as usize,
    }
}

/// Builds the speculative store-forwarding overflow PoC (§III-C): on the
/// mispredicted path, a `WRPKRU` transiently write-enables a locked page, a
/// store writes `poison * X` there, and a younger load reads it back via
/// store-to-load forwarding and transmits it. SpecMPK's *PKRU Store Check*
/// bars the forwarding (the load waits until it is non-squashable);
/// NonSecure leaks `poison * ATTACK_POS`.
#[must_use]
pub fn store_forward_overflow(poison: u8) -> AttackProgram {
    let write_locked = Pkru::ALL_ACCESS.with_write_disabled(Pkey::new(5).expect("static"), true);
    let mut asm = Assembler::new(0x1000);
    let victim = asm.fresh_label();
    let start = asm.fresh_label();

    asm.jump(start);

    // ---- victim(X in A0) ----
    asm.bind(victim).expect("fresh");
    let skip = asm.fresh_label();
    asm.li(Reg::T0, BOUND_ADDR as i64);
    asm.load(Reg::T1, Reg::T0, 0, MemWidth::B); // slow: flushed
    asm.branch(BranchCond::Geu, Reg::A0, Reg::T1, skip);
    asm.set_pkru(Pkru::ALL_ACCESS.bits()); // transient write-enable
    asm.li(Reg::T2, SAFE_BASE as i64);
    asm.li(Reg::T3, i64::from(poison));
    asm.alu(AluOp::Mul, Reg::T3, Reg::T3, Operand::Reg(Reg::A0)); // poison·X
    asm.store(Reg::T3, Reg::T2, 0, MemWidth::B); // "overflow" into safe page
    asm.load(Reg::T4, Reg::T2, 0, MemWidth::B); // forwarded?
    asm.alu(AluOp::Sll, Reg::T4, Reg::T4, Operand::Imm(9));
    asm.li(Reg::T2, ARRAY2_BASE as i64);
    asm.alu(AluOp::Add, Reg::T2, Reg::T2, Operand::Reg(Reg::T4));
    asm.load(Reg::T0, Reg::T2, 0, MemWidth::B); // transmit
    asm.set_pkru(write_locked.bits());
    asm.bind(skip).expect("fresh");
    asm.ret();

    // ---- driver ----
    asm.bind(start).expect("fresh");
    asm.set_pkru(write_locked.bits());
    emit_driver_loop(&mut asm, victim, poison.wrapping_mul(TRAIN_POS as u8));

    let mut program = Program::new(asm.base(), asm.assemble().expect("labels bound"));
    let mut vars = vec![0u8; 4096];
    vars[0] = ATTACK_POS as u8;
    program.add_segment(DataSegment::with_bytes("vars", BOUND_ADDR, vars, Pkey::DEFAULT));
    program.add_segment(DataSegment {
        base: SAFE_BASE,
        size: 4096,
        init: Vec::new(),
        pkey: Pkey::new(5).expect("static"),
        perms: specmpk_isa::SegmentPerms::RW,
        name: "safe_writelocked".into(),
    });
    program.add_segment(DataSegment::zeroed(
        "array2_probe",
        ARRAY2_BASE,
        PROBE_SLOTS as u64 * PROBE_STRIDE,
        Pkey::DEFAULT,
    ));
    program.add_segment(DataSegment::zeroed("stack", 0x7F00_0000, 4096, Pkey::DEFAULT));
    AttackProgram {
        kind: AttackKind::StoreForwardOverflow,
        program,
        secret_index: (poison as usize * ATTACK_POS as usize) & 0xFF,
        train_index: (poison as usize * TRAIN_POS as usize) & 0xFF,
    }
}

/// Runs an attack under `policy` and performs the flush+reload measurement
/// from outside the program (the receiver's view).
#[must_use]
pub fn run_attack(attack: &AttackProgram, policy: impl Into<PolicyRef>) -> AttackOutcome {
    let config = SimConfig::with_policy(policy);
    let mut core = Core::new(config, attack.program());
    let result = core.run();
    let mem = core.mem();
    let latencies: Vec<u64> = (0..PROBE_SLOTS)
        .map(|i| mem.probe_data_latency(ARRAY2_BASE + i as u64 * PROBE_STRIDE))
        .collect();
    // Threshold: halfway between the L1 hit and DRAM latencies (see
    // `AttackOutcome::new` for the classifier contract).
    let hierarchy = config.mem.hierarchy;
    let threshold =
        (hierarchy.l1d.latency + hierarchy.l3.latency + hierarchy.dram_extra_latency) / 2;
    AttackOutcome::new(result.exit, latencies, threshold)
}

/// Like [`run_attack`], but with the speculative-access ledger attached:
/// returns both the receiver's view (the flush+reload outcome) and the
/// microarchitectural evidence (the [`LeakObserver`] with every
/// speculative access, its fate, and surviving wrong-path residue). The
/// `security_matrix` experiment cross-checks the two: a cache-timing
/// verdict should be backed by a ledger witness chain, and vice versa.
#[must_use]
pub fn run_attack_observed(
    attack: &AttackProgram,
    policy: impl Into<PolicyRef>,
) -> (AttackOutcome, LeakObserver) {
    let config = SimConfig::with_policy(policy);
    let mut core = Core::with_sink(config, attack.program(), LeakObserver::default());
    let result = core.run();
    let latencies: Vec<u64> = {
        let mem = core.mem();
        (0..PROBE_SLOTS)
            .map(|i| mem.probe_data_latency(ARRAY2_BASE + i as u64 * PROBE_STRIDE))
            .collect()
    };
    let hierarchy = config.mem.hierarchy;
    let threshold =
        (hierarchy.l1d.latency + hierarchy.l3.latency + hierarchy.dram_extra_latency) / 2;
    (AttackOutcome::new(result.exit, latencies, threshold), core.into_sink())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_indices_excludes_ties_and_handles_uniform_vectors() {
        // A latency exactly at the threshold is ambiguous: classified cold.
        let outcome = AttackOutcome::new(ExitReason::Halted, vec![9, 10, 11, 10, 2], 10);
        assert_eq!(outcome.hot_indices(), vec![0, 4]);
        assert!(outcome.leaked(0) && outcome.leaked(4));
        assert!(!outcome.leaked(1), "tie with the threshold is not a hit");
        assert!(!outcome.leaked(99), "out-of-range index never leaks");

        // All-cold: every latency at or above the threshold.
        let cold = AttackOutcome::new(ExitReason::Halted, vec![50; 8], 10);
        assert!(cold.hot_indices().is_empty());

        // All-hot: every latency strictly below the threshold.
        let hot = AttackOutcome::new(ExitReason::Halted, vec![3; 8], 10);
        assert_eq!(hot.hot_indices().len(), 8);
        assert_eq!(hot.threshold(), 10);
        assert_eq!(hot.latencies(), &[3; 8]);
    }

    #[test]
    fn observed_run_matches_plain_run_and_fills_the_ledger() {
        let attack = spectre_v1(101, 72);
        let plain = run_attack(&attack, PolicyRef::NONSECURE_SPEC);
        let (observed, ledger) = run_attack_observed(&attack, PolicyRef::NONSECURE_SPEC);
        assert_eq!(observed.exit(), &ExitReason::Halted);
        assert_eq!(
            observed.latencies(),
            plain.latencies(),
            "attaching the observer must not perturb the receiver's view"
        );
        let counts = ledger.counts();
        assert!(counts.accesses > 0, "ledger saw the program's accesses");
        assert!(counts.squashed > 0, "the attack's wrong path squashes");
        assert!(
            ledger.witness_chain(attack.secret_pkey().index() as u8).is_some(),
            "NonSecure leaves a witness chain for the spectre_v1 leak"
        );
    }

    #[test]
    fn spectre_v1_leaks_only_on_nonsecure() {
        let attack = spectre_v1(101, 72);
        for policy in specmpk_core::registry::all() {
            let outcome = run_attack(&attack, policy);
            assert_eq!(outcome.exit(), &ExitReason::Halted, "{policy}");
            assert!(
                outcome.leaked(72),
                "{policy}: training index must be hot (architectural access)"
            );
            let expect_leak = policy == PolicyRef::NONSECURE_SPEC;
            assert_eq!(
                outcome.leaked(101),
                expect_leak,
                "{policy}: secret leak mismatch; hot = {:?}",
                outcome.hot_indices()
            );
        }
    }

    #[test]
    fn spectre_v1_leaks_arbitrary_secret_bytes_on_nonsecure() {
        for secret in [3u8, 33, 200, 255] {
            let attack = spectre_v1(secret, 72);
            let outcome = run_attack(&attack, PolicyRef::NONSECURE_SPEC);
            assert!(
                outcome.leaked(secret as usize),
                "secret {secret} not leaked; hot = {:?}",
                outcome.hot_indices()
            );
            let outcome = run_attack(&attack, PolicyRef::SPEC_MPK);
            assert!(!outcome.leaked(secret as usize), "SpecMPK must block {secret}");
        }
    }

    #[test]
    fn spectre_bti_leaks_only_on_nonsecure() {
        let attack = spectre_bti(101, 72);
        for policy in specmpk_core::registry::all() {
            let outcome = run_attack(&attack, policy);
            assert_eq!(outcome.exit(), &ExitReason::Halted, "{policy}");
            let expect_leak = policy == PolicyRef::NONSECURE_SPEC;
            assert_eq!(
                outcome.leaked(101),
                expect_leak,
                "{policy}: BTI leak mismatch; hot = {:?}",
                outcome.hot_indices()
            );
        }
    }

    #[test]
    fn store_forward_overflow_blocked_by_specmpk() {
        let attack = store_forward_overflow(13);
        let secret = attack.secret_index();
        let leak = run_attack(&attack, PolicyRef::NONSECURE_SPEC);
        assert_eq!(leak.exit(), &ExitReason::Halted);
        assert!(
            leak.leaked(secret),
            "NonSecure must forward the poisoned store; hot = {:?}",
            leak.hot_indices()
        );
        let blocked = run_attack(&attack, PolicyRef::SPEC_MPK);
        assert!(
            !blocked.leaked(secret),
            "SpecMPK bars forwarding; hot = {:?}",
            blocked.hot_indices()
        );
    }
}
