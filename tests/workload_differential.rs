//! End-to-end differential test: full SS- and CPI-instrumented workloads
//! (the real evaluation binaries, shortened) must produce identical
//! architectural results on the out-of-order core — under every policy and
//! ROB_pkru size — and on the in-order reference interpreter.

use specmpk::core_model::WrpkruPolicy;
use specmpk::isa::Reg;
use specmpk::mpk::Pkru;
use specmpk::ooo::interp::{Interp, InterpExit};
use specmpk::ooo::{Core, ExitReason, SimConfig};
use specmpk::workloads::{standard_suite, Protection, Workload};

fn short(workload: &Workload, iterations: u32) -> Workload {
    let mut profile = workload.profile;
    profile.driver_iterations = iterations;
    Workload::from_profile(profile)
}

fn check_workload(workload: &Workload, protection: Protection) {
    let program = workload.build(protection);
    let reference = Interp::new(&program, Pkru::ALL_ACCESS).run(20_000_000);
    assert_eq!(
        reference.exit,
        InterpExit::Halted,
        "{}: reference run must halt cleanly",
        workload.name()
    );
    for policy in WrpkruPolicy::all() {
        let mut core = Core::new(SimConfig::with_policy(policy), &program);
        let result = core.run();
        assert_eq!(result.exit, ExitReason::Halted, "{} under {policy}", workload.name());
        for reg in Reg::all() {
            assert_eq!(
                result.reg(reg),
                reference.reg(reg),
                "{} under {policy}: register {reg} diverged",
                workload.name()
            );
        }
        assert_eq!(result.pkru(), reference.pkru, "{} under {policy}", workload.name());
        assert_eq!(
            result.stats.retired,
            reference.executed,
            "{} under {policy}: instruction counts diverged",
            workload.name()
        );
    }
}

#[test]
fn shadow_stack_workloads_match_reference() {
    for w in standard_suite()
        .iter()
        .filter(|w| w.scheme == specmpk::workloads::Scheme::ShadowStack)
        .take(3)
    {
        let w = short(w, 40);
        check_workload(&w, Protection::ShadowStack);
    }
}

#[test]
fn cpi_workloads_match_reference() {
    for w in standard_suite().iter().filter(|w| w.scheme == specmpk::workloads::Scheme::Cpi).take(3)
    {
        let w = short(w, 40);
        check_workload(&w, Protection::Cpi);
    }
}

#[test]
fn unprotected_and_nop_variants_match_each_other() {
    // The NOP-WRPKRU variant (Fig. 4 methodology) must compute exactly what
    // the protected variant computes — it only loses the permission updates.
    let w = short(&standard_suite()[1], 30);
    let protected = w.build_protected();
    let nop = w.build_nop_wrpkru();
    let a = Interp::new(&protected, Pkru::ALL_ACCESS).run(10_000_000);
    let b = Interp::new(&nop, Pkru::ALL_ACCESS).run(10_000_000);
    assert_eq!(a.exit, InterpExit::Halted);
    assert_eq!(b.exit, InterpExit::Halted);
    // Same data results (PKRU differs by construction: NOP never updates it).
    for reg in [Reg::S0, Reg::S1, Reg::S2, Reg::A0, Reg::A1, Reg::A2] {
        assert_eq!(a.reg(reg), b.reg(reg), "{reg}");
    }
}

#[test]
fn rob_pkru_sizes_do_not_change_results() {
    let w = short(&standard_suite()[0], 40);
    let program = w.build_protected();
    let reference = Interp::new(&program, Pkru::ALL_ACCESS).run(20_000_000);
    for size in [1usize, 2, 4, 8] {
        let config = SimConfig::with_policy(WrpkruPolicy::SpecMpk).with_rob_pkru_size(size);
        let mut core = Core::new(config, &program);
        let result = core.run();
        assert_eq!(result.exit, ExitReason::Halted, "size {size}");
        for reg in Reg::all() {
            assert_eq!(result.reg(reg), reference.reg(reg), "size {size}, register {reg}");
        }
    }
}

#[test]
fn read_modify_write_style_matches_reference_too() {
    use specmpk::workloads::PkruUpdateStyle;
    let w = short(&standard_suite()[0], 30);
    let program = w.build_with_style(Protection::ShadowStack, PkruUpdateStyle::ReadModifyWrite);
    let reference = Interp::new(&program, Pkru::ALL_ACCESS).run(20_000_000);
    assert_eq!(reference.exit, InterpExit::Halted);
    for policy in WrpkruPolicy::all() {
        let mut core = Core::new(SimConfig::with_policy(policy), &program);
        let result = core.run();
        assert_eq!(result.exit, ExitReason::Halted, "{policy}");
        for reg in Reg::all() {
            assert_eq!(result.reg(reg), reference.reg(reg), "{policy}: {reg}");
        }
        assert_eq!(result.pkru(), reference.pkru, "{policy}");
    }
    // And the two styles agree with each other architecturally.
    let li = w.build_with_style(Protection::ShadowStack, PkruUpdateStyle::LoadImmediate);
    let li_ref = Interp::new(&li, Pkru::ALL_ACCESS).run(20_000_000);
    for reg in [Reg::S0, Reg::S1, Reg::S2, Reg::A0, Reg::A1, Reg::A2] {
        assert_eq!(li_ref.reg(reg), reference.reg(reg), "{reg}");
    }
    assert_eq!(li_ref.pkru, reference.pkru);
}
