//! Differential tests for functional fast-forward and the checkpoint
//! format (DESIGN.md §15): fast-forwarding K instructions and finishing on
//! the detailed core must be architecturally indistinguishable from an
//! uninterrupted detailed run — under every registered policy — and a
//! checkpoint's serialized bytes must not depend on when, how often, or at
//! what worker count it was produced.

use specmpk::core_model::registry;
use specmpk::isa::{Program, Reg};
use specmpk::mpk::Pkru;
use specmpk::ooo::interp::{Interp, InterpExit};
use specmpk::ooo::{Checkpoint, Core, ExitReason, FastForward, SimConfig};
use specmpk::workloads::{standard_suite, Workload};

fn short(workload: &Workload, iterations: u32) -> Workload {
    let mut profile = workload.profile;
    profile.driver_iterations = iterations;
    Workload::from_profile(profile)
}

/// Fast-forward exactly `k` instructions (the program must not end first)
/// and capture the warm state.
fn checkpoint_at(program: &Program, k: u64) -> Checkpoint {
    let mut ff = FastForward::new(&SimConfig::default(), program);
    let exit = ff.step_n(k);
    assert!(exit.is_none(), "program ended during the {k}-instruction fast-forward: {exit:?}");
    assert_eq!(ff.executed(), k);
    Checkpoint::capture(ff)
}

/// Property-based split equivalence: for random workloads and a random
/// split point K, functionally fast-forwarding K instructions and running
/// the rest on the detailed core must reach the same exit, final PKRU,
/// architectural registers, and total instruction count as the detailed
/// core running uninterrupted from reset — for every registered policy.
mod fast_forward_equivalence {
    use super::*;
    use proptest::prelude::*;

    /// Suite indices with short drivers (same set the other differential
    /// properties in this tree use — the long profiles add wall clock, not
    /// coverage).
    const LIGHT: [usize; 10] = [0, 1, 3, 4, 6, 8, 10, 11, 12, 13];

    proptest! {
        #![proptest_config(ProptestConfig { cases: 6 })]

        #[test]
        fn split_runs_match_uninterrupted_runs(
            pick in 0usize..10,
            iterations in 5u32..15,
            split_pct in 1u64..100,
        ) {
            let w = short(&standard_suite()[LIGHT[pick]], iterations);
            let program = w.build_protected();
            let reference = Interp::new(&program, Pkru::ALL_ACCESS).run(20_000_000);
            prop_assert_eq!(&reference.exit, &InterpExit::Halted);
            // A split point strictly inside the program, anywhere from its
            // first instruction to its last.
            let k = (reference.executed * split_pct / 100).clamp(1, reference.executed - 1);
            // One checkpoint serves every policy: warmup is functional, so
            // the captured state is policy-independent.
            let cp = checkpoint_at(&program, k);
            for policy in registry::all() {
                let config = SimConfig::with_policy(policy);
                let mut full = Core::new(config, &program);
                let full = full.run();
                let mut resumed = Core::from_checkpoint(config, &program, &cp);
                let resumed = resumed.run();
                prop_assert_eq!(&full.exit, &ExitReason::Halted, "{}", policy);
                prop_assert_eq!(&resumed.exit, &full.exit, "{} at split {}", policy, k);
                prop_assert_eq!(
                    cp.executed + resumed.stats.retired,
                    full.stats.retired,
                    "{} at split {}: instruction totals diverged", policy, k
                );
                prop_assert_eq!(full.stats.retired, reference.executed, "{}", policy);
                prop_assert_eq!(resumed.pkru(), full.pkru(), "{} at split {}", policy, k);
                prop_assert_eq!(resumed.pkru(), reference.pkru, "{}", policy);
                for reg in Reg::all() {
                    prop_assert_eq!(
                        resumed.reg(reg), full.reg(reg),
                        "{} at split {}: register {} diverged", policy, k, reg
                    );
                    prop_assert_eq!(resumed.reg(reg), reference.reg(reg), "{}: {}", policy, reg);
                }
            }
        }
    }
}

/// The serialized checkpoint is a golden: capturing the same (program, K)
/// twice in-process, via save/load, or under parallel fan-out at different
/// worker counts must produce identical bytes.
#[test]
fn checkpoint_bytes_are_run_and_jobs_invariant() {
    let w = short(&standard_suite()[0], 20);
    let program = w.build_protected();
    let reference = Interp::new(&program, Pkru::ALL_ACCESS).run(20_000_000);
    assert_eq!(reference.exit, InterpExit::Halted);
    let k = reference.executed / 3;

    let golden = checkpoint_at(&program, k).to_json().dump();
    assert_eq!(checkpoint_at(&program, k).to_json().dump(), golden, "repeat capture diverged");

    // A file round-trip re-parses and re-serializes without drift.
    let parsed = Checkpoint::from_json(
        &SimConfig::default(),
        &specmpk::trace::Json::parse(&golden).expect("checkpoint dump must re-parse"),
    )
    .expect("checkpoint dump must restore");
    assert_eq!(parsed.to_json().dump(), golden, "parse → serialize round trip drifted");

    // Captures produced inside the worker pool — the path `sampled_run`
    // and `specmpk-par` fan-outs take — must match the serial golden at
    // any worker count (this is what makes `SPECMPK_JOBS=1` and `=4`
    // produce byte-identical sampling artifacts).
    for jobs in [1usize, 4] {
        let items: Vec<(String, u64)> =
            (0..4).map(|i| (format!("fast-forward/golden/{jobs}j/{i}"), k)).collect();
        let dumps = specmpk_par::par_map_labeled_with_jobs(jobs, items, |k| {
            checkpoint_at(&program, k).to_json().dump()
        });
        for (i, dump) in dumps.iter().enumerate() {
            assert_eq!(dump, &golden, "jobs={jobs}, capture {i}: checkpoint bytes diverged");
        }
    }
}

/// Resuming a fast-forward from a checkpoint (the window-skip path in
/// `sampled_run`) must land on exactly the state a longer uninterrupted
/// fast-forward reaches.
#[test]
fn resumed_fast_forward_reaches_the_same_state() {
    let w = short(&standard_suite()[1], 15);
    let program = w.build_protected();
    let reference = Interp::new(&program, Pkru::ALL_ACCESS).run(20_000_000);
    assert_eq!(reference.exit, InterpExit::Halted);
    let (k1, k2) = (reference.executed / 4, reference.executed / 4);

    let base = checkpoint_at(&program, k1);
    let mut resumed = base.resume_fast_forward(&program);
    assert!(resumed.step_n(k2).is_none());
    let via_resume = Checkpoint::capture(resumed).to_json().dump();
    let direct = checkpoint_at(&program, k1 + k2).to_json().dump();
    assert_eq!(via_resume, direct, "resume path diverged from a direct fast-forward");
}
