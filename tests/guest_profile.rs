//! Guest attribution profiler tests: off-by-default invariance, a golden
//! `guest_profile` JSON for a fixed 3-instruction program, the
//! full-attribution invariant (every simulated cycle charged to a PC),
//! the WRPKRU site-table accounting identities against the aggregate
//! stats, and byte determinism across runs and worker counts.

use specmpk::core_model::WrpkruPolicy;
use specmpk::isa::{Assembler, Program};
use specmpk::ooo::{Core, SimConfig, SimStats};
use specmpk::trace::Json;
use specmpk::workloads::standard_suite;
use specmpk_par::par_map_labeled_with_jobs;

/// `li eax, 0; wrpkru; halt` — the smallest program that exercises the
/// WRPKRU rename/retire path with a fully predictable schedule.
fn wrpkru_program() -> Program {
    let mut asm = Assembler::new(0x1000);
    asm.set_pkru(0);
    asm.halt();
    Program::new(asm.base(), asm.assemble().expect("assembles"))
}

/// Runs the WRPKRU-dense suite workload with guest profiling on.
fn profiled_run(policy: WrpkruPolicy, max_instructions: u64) -> SimStats {
    let workload = &standard_suite()[0];
    let program = workload.build_protected();
    let mut config = SimConfig::with_policy(policy);
    config.max_instructions = max_instructions;
    let mut core = Core::new(config, &program);
    core.set_guest_profiling(true);
    core.set_guest_profile_top_n(4096); // untruncated: every tracked PC listed
    core.run().stats
}

#[test]
fn guest_profile_absent_without_profiling() {
    let program = wrpkru_program();
    let mut core = Core::new(SimConfig::with_policy(WrpkruPolicy::SpecMpk), &program);
    let stats = core.run().stats;
    assert!(
        stats.to_json().get("guest_profile").is_none(),
        "profiling off ⇒ stats artifact must be byte-identical to the seed's"
    );
}

#[test]
fn guest_profile_golden_json() {
    let program = wrpkru_program();
    let mut core = Core::new(SimConfig::with_policy(WrpkruPolicy::SpecMpk), &program);
    core.set_guest_profiling(true);
    let stats = core.run().stats;
    let json = stats.to_json();
    let profile = json.get("guest_profile").expect("profiling on ⇒ guest_profile present");
    // The 3-instruction program runs in 8 cycles. Retire-to-retire gap
    // attribution: the `li` at 0x1000 absorbs the 7-cycle pipeline-fill
    // gap to the first retirement, the WRPKRU at 0x1008 the 1 cycle to
    // the next, the `halt` at 0x1010 retires in the same cycle (0). The
    // 0x0 row holds rename-stall slots charged after the front queue
    // drains (no next PC to blame). The single WRPKRU serializes rename
    // for 4 cycles — latency 4, never squashed, ROB_pkru residency 4.
    let golden = r#"{
  "top_n": 32,
  "pcs_tracked": 4,
  "charged_cycles": 8,
  "squash_batches": 0,
  "squash_batches_with_wrpkru": 0,
  "hot_pcs": [
    {
      "pc": "0x1000",
      "retired": 1,
      "cycles": 7,
      "squash_triggers": 0,
      "load_replays": 0,
      "rename_slot_stalls": {
        "frontend_empty": 16
      }
    },
    {
      "pc": "0x1008",
      "retired": 1,
      "cycles": 1,
      "squash_triggers": 0,
      "load_replays": 0,
      "rename_slot_stalls": {}
    },
    {
      "pc": "0x0",
      "retired": 0,
      "cycles": 0,
      "squash_triggers": 0,
      "load_replays": 0,
      "rename_slot_stalls": {
        "frontend_empty": 37
      }
    },
    {
      "pc": "0x1010",
      "retired": 1,
      "cycles": 0,
      "squash_triggers": 0,
      "load_replays": 0,
      "rename_slot_stalls": {}
    }
  ],
  "wrpkru_sites": [
    {
      "pc": "0x1008",
      "executions": 1,
      "squashed": 0,
      "squashes_caused": 0,
      "rob_pkru_residency": 4,
      "latency": {
        "count": 1,
        "sum": 4,
        "min": 4,
        "max": 4,
        "mean": 4,
        "p50": 4,
        "p90": 4,
        "p99": 4
      }
    }
  ]
}
"#;
    assert_eq!(profile.dump(), golden);
}

#[test]
fn every_cycle_is_charged_to_a_pc() {
    for policy in WrpkruPolicy::all() {
        let stats = profiled_run(policy, 3_000);
        assert_eq!(
            stats.guest.charged_cycles(),
            stats.cycles,
            "{policy:?}: the per-PC cycle charges must sum to the cycle count"
        );
        // With an untruncated top-N the rendered hot-PC list carries the
        // same total, so consumers can rebuild the CPI stack exactly.
        let json = stats.guest.to_json(&SimStats::stall_names());
        let listed: u64 = json
            .get("hot_pcs")
            .and_then(Json::as_arr)
            .expect("hot_pcs")
            .iter()
            .map(|row| row.get("cycles").and_then(Json::as_u64).unwrap_or(0))
            .sum();
        assert_eq!(listed, stats.cycles, "{policy:?}: hot-PC rows cover every cycle");
    }
}

#[test]
fn site_table_sums_match_aggregate_stats() {
    let stats = profiled_run(WrpkruPolicy::SpecMpk, 5_000);
    let json = stats.guest.to_json(&SimStats::stall_names());
    let sites = json.get("wrpkru_sites").and_then(Json::as_arr).expect("wrpkru_sites");
    assert!(!sites.is_empty(), "WRPKRU-dense workload populates the site table");
    let field_sum = |key: &str| -> u64 {
        sites.iter().map(|s| s.get(key).and_then(Json::as_u64).unwrap_or(0)).sum()
    };
    // Site executions are charged exactly where the aggregate WRPKRU
    // retire-latency histogram records, and site squash attribution
    // exactly where the PKRU engine counts squashed ROB_pkru entries.
    assert_eq!(field_sum("executions"), stats.hist.wrpkru_latency.count());
    assert_eq!(field_sum("squashed"), stats.pkru.wrpkru_squashed);
    let lat_count_sum: u64 = sites
        .iter()
        .map(|s| s.get("latency").and_then(|l| l.get("count")).and_then(Json::as_u64).unwrap_or(0))
        .sum();
    assert_eq!(lat_count_sum, stats.hist.wrpkru_latency.count());
}

#[test]
fn guest_profile_bytes_are_deterministic_across_runs() {
    let dump = |s: &SimStats| s.guest.to_json(&SimStats::stall_names()).dump();
    let a = profiled_run(WrpkruPolicy::SpecMpk, 3_000);
    let b = profiled_run(WrpkruPolicy::SpecMpk, 3_000);
    assert_eq!(dump(&a), dump(&b), "same seed, same config ⇒ identical profile bytes");
}

#[test]
fn guest_profile_bytes_are_worker_count_invariant() {
    // The experiment bins fan cells out over SPECMPK_JOBS workers; the
    // recorded guest profiles must not depend on the worker count.
    let run_all = |jobs: usize| -> Vec<String> {
        let cells: Vec<(String, WrpkruPolicy)> =
            WrpkruPolicy::all().iter().map(|&p| (format!("{p:?}"), p)).collect();
        par_map_labeled_with_jobs(jobs, cells, |policy| {
            let stats = profiled_run(policy, 2_000);
            stats.guest.to_json(&SimStats::stall_names()).dump()
        })
    };
    assert_eq!(run_all(1), run_all(4), "JOBS=1 and JOBS=4 produce identical profiles");
}
