//! Integration tests for the paper's Fig. 12 vulnerability-mitigation
//! scenarios, exercised end-to-end on the out-of-order core under every
//! WRPKRU microarchitecture.

use specmpk::attacks::{
    all_attacks, run_attack, run_attack_observed, spectre_bti, spectre_v1, store_forward_overflow,
};
use specmpk::core_model::WrpkruPolicy;
use specmpk::isa::{Assembler, DataSegment, MemWidth, Program, Reg};
use specmpk::mpk::{AccessKind, Pkey, Pkru};
use specmpk::ooo::{Core, ExitReason, SimConfig};
use specmpk::trace::SquashCause;

fn secure_page_program(body: impl FnOnce(&mut Assembler)) -> Program {
    let mut asm = Assembler::new(0x1000);
    body(&mut asm);
    let mut p = Program::new(asm.base(), asm.assemble().expect("labels bound"));
    p.add_segment(DataSegment::zeroed("secure", 0x8000, 4096, Pkey::new(3).unwrap()));
    p.add_segment(DataSegment::zeroed("stack", 0x7F00_0000, 4096, Pkey::DEFAULT));
    p
}

/// Fig. 12(a): a vulnerable store to a write-disabled page must raise a
/// protection fault — under *every* microarchitecture, including the
/// speculative ones.
#[test]
fn fig12a_memory_corruption_blocked() {
    let key = Pkey::new(3).unwrap();
    let program = secure_page_program(|asm| {
        asm.set_pkru(Pkru::ALL_ACCESS.with_write_disabled(key, true).bits());
        asm.li(Reg::T0, 0x8000);
        asm.li(Reg::T1, 0x4141_4141); // "AAAA"
        asm.store(Reg::T1, Reg::T0, 0, MemWidth::D); // gets(buf) overflow
        asm.halt();
    });
    for policy in WrpkruPolicy::all() {
        let mut core = Core::new(SimConfig::with_policy(policy), &program);
        let result = core.run();
        match result.exit {
            ExitReason::ProtectionFault { fault, .. } => {
                assert_eq!(fault.pkey(), key, "{policy}");
                assert_eq!(fault.access(), AccessKind::Write, "{policy}");
            }
            other => panic!("{policy}: expected a protection fault, got {other:?}"),
        }
        // The corrupting store never reached memory.
        assert_eq!(core.mem().read(0x8000, 8), 0, "{policy}: store must not commit");
    }
}

/// Fig. 12(b): a vulnerable load from an access-disabled page (buffer
/// overread, Heartbleed-style) must raise a protection fault under every
/// microarchitecture.
#[test]
fn fig12b_buffer_overread_blocked() {
    let key = Pkey::new(3).unwrap();
    let program = secure_page_program(|asm| {
        asm.set_pkru(Pkru::ALL_ACCESS.with_access_disabled(key, true).bits());
        asm.li(Reg::T0, 0x8000);
        asm.load(Reg::T1, Reg::T0, 0, MemWidth::D); // overread
        asm.halt();
    });
    for policy in WrpkruPolicy::all() {
        let mut core = Core::new(SimConfig::with_policy(policy), &program);
        let result = core.run();
        match result.exit {
            ExitReason::ProtectionFault { fault, .. } => {
                assert_eq!(fault.pkey(), key, "{policy}");
                assert_eq!(fault.access(), AccessKind::Read, "{policy}");
            }
            other => panic!("{policy}: expected a protection fault, got {other:?}"),
        }
    }
}

/// Fig. 12(c): the control-steering (Spectre-V1) transient permission
/// upgrade leaks under NonSecure and is blocked by SpecMPK and Serialized.
#[test]
fn fig12c_control_steering_mitigation_matrix() {
    let attack = spectre_v1(101, 72);
    for policy in WrpkruPolicy::all() {
        let outcome = run_attack(&attack, policy);
        let expect = policy == WrpkruPolicy::NonSecureSpec;
        assert_eq!(outcome.leaked(101), expect, "{policy}");
    }
}

/// Fig. 12(d): the branch-target-injection variant behaves identically.
#[test]
fn fig12d_bti_mitigation_matrix() {
    let attack = spectre_bti(101, 72);
    for policy in WrpkruPolicy::all() {
        let outcome = run_attack(&attack, policy);
        let expect = policy == WrpkruPolicy::NonSecureSpec;
        assert_eq!(outcome.leaked(101), expect, "{policy}");
    }
}

/// §III-C: the speculative store-to-load-forwarding overflow is blocked by
/// SpecMPK's PKRU Store Check.
#[test]
fn store_forward_overflow_mitigation_matrix() {
    let attack = store_forward_overflow(17);
    for policy in WrpkruPolicy::all() {
        let outcome = run_attack(&attack, policy);
        let expect = policy == WrpkruPolicy::NonSecureSpec;
        assert_eq!(outcome.leaked(attack.secret_index()), expect, "{policy}");
    }
}

/// Exact-golden witness chain: under NonSecure, the speculative-access
/// ledger must reconstruct the full Spectre-V1 causal chain — training,
/// the mispredicted bounds check, the transiently permitted secret-domain
/// load, the dependent wrong-path access, and the cache/TLB residue that
/// survives the squash. The simulator is deterministic, so every field is
/// pinned to its exact value.
#[test]
fn spectre_v1_nonsecure_witness_chain_golden() {
    let attack = spectre_v1(101, 72);
    let (outcome, ledger) = run_attack_observed(&attack, WrpkruPolicy::NonSecureSpec);
    assert!(outcome.leaked(101), "the observed run still leaks");
    let chain = ledger
        .witness_chain(attack.secret_pkey().index() as u8)
        .expect("NonSecure spectre_v1 yields a witness chain");
    assert_eq!(chain.train_retires, 41, "bounds check retired in-bounds during training");
    assert_eq!(chain.mispredict_pc, 0x1018, "the trained bounds-check branch mispredicts");
    assert_eq!(chain.cause, SquashCause::BranchMispredict);
    assert_eq!(chain.secret_addr, 0x20008, "array1 + out-of-bounds index");
    assert_eq!(chain.secret_pkru, 0, "the transient WRPKRU opened all domains");
    assert!(chain.secret_cycle < chain.squash_cycle, "secret load is pre-squash");
    assert!(chain.residue.line && chain.residue.tlb, "residue survives the squash");
    let counts = ledger.counts();
    assert_eq!(
        counts.retired + counts.squashed + counts.unresolved,
        counts.accesses,
        "every ledgered access has exactly one fate"
    );
    assert_eq!(ledger.dropped(), 0, "the attack fits in the ledger capacity");
}

/// The secure microarchitectures must leave no residue-backed witness
/// chain for *any* attack: SpecMPK defers the transient permission
/// upgrade and Serialized never issues the secret load speculatively.
#[test]
fn secure_policies_leave_no_witness_chain() {
    for attack in all_attacks() {
        for policy in [WrpkruPolicy::Serialized, WrpkruPolicy::SpecMpk] {
            let (_, ledger) = run_attack_observed(&attack, policy);
            assert!(
                ledger.witness_chain(attack.secret_pkey().index() as u8).is_none(),
                "{}/{policy}: secure policy must not yield a witness chain",
                attack.kind().name(),
            );
        }
    }
}

/// The transient-leak experiments must not change architectural state:
/// every attack program halts normally with identical registers under all
/// three policies.
#[test]
fn attacks_are_architecturally_invisible() {
    let attack = spectre_v1(200, 72);
    let mut finals = Vec::new();
    for policy in WrpkruPolicy::all() {
        let mut core = Core::new(SimConfig::with_policy(policy), attack.program());
        let result = core.run();
        assert_eq!(result.exit, ExitReason::Halted, "{policy}");
        finals.push((result.reg(Reg::S0), result.pkru()));
    }
    assert!(finals.windows(2).all(|w| w[0] == w[1]), "{finals:?}");
}
