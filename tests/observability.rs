//! Golden tests for the observability surface: the Konata/O3PipeView
//! pipeline trace is byte-stable for a fixed-seed workload, and the JSON
//! stats dump round-trips through the crate's own parser and matches
//! `SimStats` field-for-field (all 9 rename-stall causes included).

use specmpk::core_model::WrpkruPolicy;
use specmpk::isa::{Assembler, Program, Reg};
use specmpk::ooo::{Core, RenameStall, SimConfig, SimStats};
use specmpk::trace::{Json, PipeTracer};
use specmpk::workloads::standard_suite;

/// Runs the suite's first workload (fixed profile seed) under `policy`
/// with a tracer attached, returning the rendered trace and the stats.
fn traced_run(policy: WrpkruPolicy, max_instructions: u64) -> (String, SimStats) {
    let workload = &standard_suite()[0];
    let program = workload.build_protected();
    let mut config = SimConfig::with_policy(policy);
    config.max_instructions = max_instructions;
    let mut core = Core::with_sink(config, &program, PipeTracer::default());
    let stats = core.run().stats;
    (core.into_sink().render(), stats)
}

#[test]
fn konata_trace_is_byte_stable() {
    let (a, stats_a) = traced_run(WrpkruPolicy::SpecMpk, 3_000);
    let (b, stats_b) = traced_run(WrpkruPolicy::SpecMpk, 3_000);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed, same config ⇒ identical trace bytes");
    assert_eq!(stats_a.cycles, stats_b.cycles);
    // Every retained block is a well-formed O3PipeView record.
    let fetch_lines = a.lines().filter(|l| l.starts_with("O3PipeView:fetch:")).count();
    let retire_lines = a.lines().filter(|l| l.starts_with("O3PipeView:retire:")).count();
    assert_eq!(fetch_lines, retire_lines);
    assert!(fetch_lines > 0);
    // The WRPKRU-dense workload leaves SpecMPK annotations in the trace.
    assert!(a.contains("//specmpk:robpkru_alloc:"));
    assert!(a.lines().all(|l| l.starts_with("O3PipeView:") || l.starts_with("//specmpk:")));
}

#[test]
fn konata_trace_golden_block() {
    // A two-instruction program has a fully predictable pipeline schedule;
    // this pins the exact text format Konata parses.
    let mut asm = Assembler::new(0x1000);
    asm.li(Reg::T0, 7);
    asm.halt();
    let program = Program::new(asm.base(), asm.assemble().expect("assembles"));
    let mut core = Core::with_sink(SimConfig::default(), &program, PipeTracer::default());
    core.run();
    let golden = "\
O3PipeView:fetch:1:0x0000000000001000:0:0:li t0, 7
O3PipeView:decode:4
O3PipeView:rename:4
O3PipeView:dispatch:4
O3PipeView:issue:5
O3PipeView:complete:6
O3PipeView:retire:7:store:0
O3PipeView:fetch:1:0x0000000000001008:0:1:halt
O3PipeView:decode:4
O3PipeView:rename:4
O3PipeView:dispatch:4
O3PipeView:issue:4
O3PipeView:complete:4
O3PipeView:retire:7:store:0
";
    assert_eq!(core.into_sink().render(), golden);
}

#[test]
fn stats_json_round_trips_field_for_field() {
    let workload = &standard_suite()[0];
    let program = workload.build_protected();
    let mut config = SimConfig::with_policy(WrpkruPolicy::SpecMpk);
    config.max_instructions = 20_000;
    let mut core = Core::new(config, &program);
    core.set_sample_interval(1_000);
    let stats = core.run().stats;

    let text = stats.to_json().dump();
    let parsed = Json::parse(&text).expect("dump() emits valid JSON");

    let u = |k: &str| parsed.get(k).unwrap().as_u64().unwrap();
    assert_eq!(u("cycles"), stats.cycles);
    assert_eq!(u("retired"), stats.retired);
    assert_eq!(u("retired_wrpkru"), stats.retired_wrpkru);
    assert_eq!(u("retired_loads"), stats.retired_loads);
    assert_eq!(u("retired_stores"), stats.retired_stores);
    assert_eq!(u("retired_branches"), stats.retired_branches);
    assert_eq!(u("mispredicts"), stats.mispredicts);
    assert_eq!(u("squashed"), stats.squashed);
    assert_eq!(u("load_replays"), stats.load_replays);
    assert_eq!(u("forward_blocked_loads"), stats.forward_blocked_loads);
    assert_eq!(u("tlb_miss_stalls"), stats.tlb_miss_stalls);
    assert_eq!(u("forwards"), stats.forwards);
    assert_eq!(u("protection_faults"), stats.protection_faults);
    assert_eq!(u("page_faults"), stats.page_faults);

    let f = |k: &str| parsed.get(k).unwrap().as_f64().unwrap();
    assert!((f("ipc") - stats.ipc()).abs() < 1e-12);
    assert!((f("wrpkru_per_kilo_instr") - stats.wrpkru_per_kilo_instr()).abs() < 1e-12);
    assert!((f("mpki") - stats.mpki()).abs() < 1e-12);
    assert!((f("wrpkru_stall_fraction") - stats.wrpkru_stall_fraction()).abs() < 1e-12);

    // All 9 rename-stall causes, at both cycle and slot granularity.
    let cycles_obj = parsed.get("rename_stall_cycles").unwrap();
    let slots_obj = parsed.get("rename_slot_stalls").unwrap();
    for cause in RenameStall::all() {
        assert_eq!(
            cycles_obj.get(cause.name()).unwrap().as_u64().unwrap(),
            stats.rename_stall_cycles(cause),
            "rename_stall_cycles[{}]",
            cause.name()
        );
        assert_eq!(
            slots_obj.get(cause.name()).unwrap().as_u64().unwrap(),
            stats.rename_slot_stalls(cause),
            "rename_slot_stalls[{}]",
            cause.name()
        );
    }

    // PKRU engine sub-object.
    let pkru = parsed.get("pkru").unwrap();
    assert_eq!(pkru.get("wrpkru_renamed").unwrap().as_u64().unwrap(), stats.pkru.wrpkru_renamed);
    assert_eq!(pkru.get("wrpkru_retired").unwrap().as_u64().unwrap(), stats.pkru.wrpkru_retired);
    assert_eq!(pkru.get("wrpkru_squashed").unwrap().as_u64().unwrap(), stats.pkru.wrpkru_squashed);
    assert_eq!(
        pkru.get("load_check_failures").unwrap().as_u64().unwrap(),
        stats.pkru.load_check_failures
    );
    assert_eq!(
        pkru.get("store_check_failures").unwrap().as_u64().unwrap(),
        stats.pkru.store_check_failures
    );
    assert_eq!(
        pkru.get("rob_full_stall_cycles").unwrap().as_u64().unwrap(),
        stats.pkru.rob_full_stall_cycles
    );

    // Distribution metrics: every named histogram round-trips its summary
    // statistics, and the WRPKRU-dense workload actually populates the two
    // headline distributions (dispatch-to-retire latency, ROB_pkru depth).
    let hists = parsed.get("histograms").unwrap();
    for (name, h) in stats.hist.named() {
        let j = hists.get(name).unwrap();
        assert_eq!(j.get("count").unwrap().as_u64().unwrap(), h.count(), "{name}.count");
        assert_eq!(j.get("sum").unwrap().as_u64().unwrap(), h.sum(), "{name}.sum");
        assert_eq!(j.get("min").unwrap().as_u64().unwrap(), h.min(), "{name}.min");
        assert_eq!(j.get("max").unwrap().as_u64().unwrap(), h.max(), "{name}.max");
        for (key, q) in [("p50", h.p50()), ("p90", h.p90()), ("p99", h.p99())] {
            assert!((j.get(key).unwrap().as_f64().unwrap() - q).abs() < 1e-12, "{name}.{key}");
        }
        // Sparse bucket pairs [lower_bound, count] reassemble into count.
        let bucket_total: u64 = j
            .get("buckets")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|b| {
                let pair = b.as_arr().unwrap();
                assert_eq!(pair.len(), 2);
                pair[1].as_u64().unwrap()
            })
            .sum();
        assert_eq!(bucket_total, h.count(), "{name} bucket counts");
    }
    assert_eq!(stats.hist.wrpkru_latency.count(), stats.retired_wrpkru);
    assert!(stats.hist.rob_pkru_occupancy.max() > 0, "speculative WRPKRUs were in flight");
    assert_eq!(stats.hist.rob_occupancy.count(), stats.cycles, "ROB occupancy sampled per cycle");

    // Memory sub-object and the sampled time series.
    let mem = parsed.get("mem").unwrap();
    assert_eq!(mem.get("l1d").unwrap().get("hits").unwrap().as_u64().unwrap(), stats.mem.l1d.hits);
    assert_eq!(
        mem.get("dtlb").unwrap().get("misses").unwrap().as_u64().unwrap(),
        stats.mem.dtlb.misses
    );
    let samples = parsed.get("samples").unwrap().as_arr().unwrap();
    assert_eq!(samples.len(), stats.samples.len());
    assert!(!samples.is_empty(), "sampling was enabled, so samples exist");
    for (json, sample) in samples.iter().zip(&stats.samples) {
        assert_eq!(json.get("cycle").unwrap().as_u64().unwrap(), sample.cycle);
        assert_eq!(json.get("len").unwrap().as_u64().unwrap(), sample.len);
        assert_eq!(json.get("retired").unwrap().as_u64().unwrap(), sample.retired);
    }
    // Interval deltas reassemble into the run totals.
    let retired_total: u64 = stats.samples.iter().map(|s| s.retired).sum();
    assert_eq!(retired_total, stats.retired);
    let len_total: u64 = stats.samples.iter().map(|s| s.len).sum();
    assert_eq!(len_total, stats.cycles);
    // Per-interval histogram deltas merge back into the run histograms.
    let mut merged = specmpk::ooo::SimHistograms::default();
    for s in &stats.samples {
        merged.merge(&s.hist);
    }
    for ((name, total), (_, interval_sum)) in stats.hist.named().iter().zip(merged.named().iter()) {
        assert_eq!(total.count(), interval_sum.count(), "{name} interval counts");
        assert_eq!(total.sum(), interval_sum.sum(), "{name} interval sums");
    }
}
