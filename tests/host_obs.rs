//! Golden tests for the host-observability layer: the `host_profile`
//! stats section (span names and call counts exact, nanosecond fields
//! masked — wall-clock is host-dependent, structure is not), the
//! micro-event journal's JSONL schema, and cross-run determinism of the
//! journal bytes.

use specmpk::core_model::WrpkruPolicy;
use specmpk::isa::{Assembler, Program};
use specmpk::ooo::{Core, SimConfig};
use specmpk::trace::{Journal, Json};
use specmpk::workloads::standard_suite;

/// `li eax, 0; wrpkru; halt` — the smallest program that exercises the
/// WRPKRU rename/retire path with a fully predictable schedule.
fn wrpkru_program() -> Program {
    let mut asm = Assembler::new(0x1000);
    asm.set_pkru(0);
    asm.halt();
    Program::new(asm.base(), asm.assemble().expect("assembles"))
}

/// Replaces every `total_ns`/`ns_per_call` leaf under `host_profile`
/// with 0, leaving names, order, and call counts intact.
fn mask_ns(profile: &Json) -> Json {
    let Json::Obj(spans) = profile else { panic!("host_profile is an object") };
    let mut out = Json::object();
    for (name, span) in spans {
        let calls = span.get("calls").expect("span has calls").clone();
        out.set(
            name,
            Json::object().with("total_ns", 0u64).with("calls", calls).with("ns_per_call", 0u64),
        );
    }
    out
}

#[test]
fn host_profile_absent_without_profiling() {
    let program = wrpkru_program();
    let mut core = Core::new(SimConfig::with_policy(WrpkruPolicy::SpecMpk), &program);
    let stats = core.run().stats;
    assert!(
        stats.to_json().get("host_profile").is_none(),
        "profiling off ⇒ stats artifact must be byte-identical to the seed's"
    );
}

#[test]
fn host_profile_golden_shape() {
    let program = wrpkru_program();
    let mut core = Core::new(SimConfig::with_policy(WrpkruPolicy::SpecMpk), &program);
    core.set_profiling(true);
    let stats = core.run().stats;
    let json = stats.to_json();
    let profile = json.get("host_profile").expect("profiling on ⇒ host_profile present");
    // The 3-instruction program still takes 8 simulated cycles, but the
    // idle-cycle bulk advance jumps over one frozen frontend-fill cycle,
    // so only 7 step() entries run; the last exits at retire (so the
    // later stages see 6 calls), no squash, no sampling, one idle-skip
    // pass, one finish pass, one run.total.
    let golden = r#"{
  "step.housekeeping": {
    "total_ns": 0,
    "calls": 7,
    "ns_per_call": 0
  },
  "stage.retire": {
    "total_ns": 0,
    "calls": 7,
    "ns_per_call": 0
  },
  "stage.writeback": {
    "total_ns": 0,
    "calls": 6,
    "ns_per_call": 0
  },
  "stage.issue": {
    "total_ns": 0,
    "calls": 6,
    "ns_per_call": 0
  },
  "stage.rename": {
    "total_ns": 0,
    "calls": 6,
    "ns_per_call": 0
  },
  "stage.fetch": {
    "total_ns": 0,
    "calls": 6,
    "ns_per_call": 0
  },
  "stage.squash": {
    "total_ns": 0,
    "calls": 0,
    "ns_per_call": 0
  },
  "sim.sample": {
    "total_ns": 0,
    "calls": 0,
    "ns_per_call": 0
  },
  "run.finish": {
    "total_ns": 0,
    "calls": 1,
    "ns_per_call": 0
  },
  "run.total": {
    "total_ns": 0,
    "calls": 1,
    "ns_per_call": 0
  },
  "step.idle_skip": {
    "total_ns": 0,
    "calls": 1,
    "ns_per_call": 0
  }
}
"#;
    assert_eq!(mask_ns(profile).dump(), golden);
}

#[test]
fn journal_jsonl_schema_golden() {
    let program = wrpkru_program();
    let mut core = Core::with_sink(
        SimConfig::with_policy(WrpkruPolicy::SpecMpk),
        &program,
        Journal::default(),
    );
    core.run();
    let jsonl = core.into_sink().to_jsonl();
    // This pins the journal's exact line format: compact single-line
    // JSON, `event`/`cycle`/`seq` first, event-specific fields after.
    let golden = "\
{\"event\":\"wrpkru_rename\",\"cycle\":4,\"seq\":1,\"tag\":0,\"wrpkru_site\":\"0x1008\"}
{\"event\":\"wrpkru_free\",\"cycle\":8,\"seq\":1,\"tag\":0}
";
    assert_eq!(jsonl, golden);
}

#[test]
fn journal_lines_parse_and_events_are_known() {
    let workload = &standard_suite()[0];
    let program = workload.build_protected();
    let mut config = SimConfig::with_policy(WrpkruPolicy::SpecMpk);
    config.max_instructions = 3_000;
    let mut core = Core::with_sink(config, &program, Journal::default());
    core.run();
    let jsonl = core.into_sink().to_jsonl();
    assert!(!jsonl.is_empty(), "WRPKRU-dense workload journals events");
    const KNOWN: &[&str] = &[
        "squash",
        "wrpkru_rename",
        "wrpkru_free",
        "pkru_check_fail",
        "head_stall",
        "load_replay",
        "replay_burst",
        "deferred_tlb_update",
        "wrong_path_stall",
        "spec_access",
        "residue",
    ];
    let mut last_cycle = 0u64;
    for line in jsonl.lines() {
        let doc = Json::parse(line).expect("every journal line is one JSON object");
        let event = doc.get("event").and_then(Json::as_str).expect("event field");
        assert!(KNOWN.contains(&event), "unknown journal event {event:?}");
        let cycle = doc.get("cycle").and_then(Json::as_u64).expect("cycle field");
        assert!(cycle >= last_cycle, "journal is cycle-ordered");
        last_cycle = cycle;
        assert!(doc.get("seq").and_then(Json::as_u64).is_some(), "seq field");
    }
    // The dense workload exercises the WRPKRU path specifically.
    assert!(jsonl.contains("\"event\":\"wrpkru_rename\""));
    assert!(jsonl.contains("\"event\":\"wrpkru_free\""));
}

#[test]
fn journal_bytes_are_deterministic_across_runs() {
    let run = || {
        let workload = &standard_suite()[0];
        let program = workload.build_protected();
        let mut config = SimConfig::with_policy(WrpkruPolicy::SpecMpk);
        config.max_instructions = 3_000;
        let mut core = Core::with_sink(config, &program, Journal::default());
        core.run();
        core.into_sink().to_jsonl()
    };
    let a = run();
    assert!(!a.is_empty());
    assert_eq!(a, run(), "same seed, same config ⇒ identical journal bytes");
}
