//! §IX-D: SpecMPK must not break the non-security uses of MPK. The paper's
//! example is Kard-style dynamic data-race detection, which *relies on*
//! protection faults firing precisely: shared objects are colored with an
//! access-disabled pkey, each access traps, and the handler attributes the
//! access to a lock. This test reproduces the pattern with
//! [`FaultMode::TrapAndContinue`] and checks that every policy traps
//! exactly the same accesses, in order.

use specmpk::core_model::WrpkruPolicy;
use specmpk::isa::{Assembler, BranchCond, DataSegment, MemWidth, Program, Reg};
use specmpk::mpk::{Pkey, Pkru};
use specmpk::ooo::{Core, ExitReason, FaultMode, SimConfig};

/// A "critical section" loop: N accesses to a shared object whose pkey is
/// access-disabled (Kard's trap-on-first-touch discipline).
fn kard_program(accesses: i64) -> Program {
    let shared_key = Pkey::new(6).unwrap();
    let mut asm = Assembler::new(0x1000);
    let top = asm.fresh_label();
    asm.set_pkru(Pkru::ALL_ACCESS.with_access_disabled(shared_key, true).bits());
    asm.li(Reg::S0, 0);
    asm.li(Reg::S1, accesses);
    asm.li(Reg::T0, 0x8000);
    asm.bind(top).unwrap();
    // Each iteration: one trapping access to the shared object, plus some
    // untracked work on ordinary memory.
    asm.load(Reg::T1, Reg::T0, 0, MemWidth::D); // traps (AD pkey)
    asm.li(Reg::T2, 0x9000);
    asm.store(Reg::S0, Reg::T2, 0, MemWidth::D); // ordinary, no trap
    asm.addi(Reg::S0, Reg::S0, 1);
    asm.branch(BranchCond::Lt, Reg::S0, Reg::S1, top);
    asm.halt();

    let mut p = Program::new(asm.base(), asm.assemble().unwrap());
    p.add_segment(DataSegment::zeroed("shared_object", 0x8000, 4096, shared_key));
    p.add_segment(DataSegment::zeroed("ordinary", 0x9000, 4096, Pkey::DEFAULT));
    p
}

#[test]
fn kard_traps_every_shared_access_under_all_policies() {
    let accesses = 25;
    let program = kard_program(accesses);
    for policy in WrpkruPolicy::all() {
        let mut config = SimConfig::with_policy(policy);
        config.fault_mode = FaultMode::TrapAndContinue;
        let mut core = Core::new(config, &program);
        let result = core.run();
        assert_eq!(result.exit, ExitReason::Halted, "{policy}");
        assert_eq!(
            result.stats.protection_faults, accesses as u64,
            "{policy}: Kard must observe exactly one trap per shared access"
        );
        // The untracked work completed in full.
        assert_eq!(result.reg(Reg::S0), accesses as u64, "{policy}");
        assert_eq!(core.mem().read(0x9000, 8), accesses as u64 - 1, "{policy}");
    }
}

/// When the handler re-colors the object (Kard grants the lock owner
/// access), subsequent accesses stop trapping — the WRPKRU-window must
/// correctly observe the *enabling* update too.
#[test]
fn kard_lock_acquisition_stops_traps() {
    let shared_key = Pkey::new(6).unwrap();
    let mut asm = Assembler::new(0x1000);
    asm.set_pkru(Pkru::ALL_ACCESS.with_access_disabled(shared_key, true).bits());
    asm.li(Reg::T0, 0x8000);
    asm.load(Reg::T1, Reg::T0, 0, MemWidth::D); // traps once
                                                // "Handler" grants access (Kard maps the object to the lock owner).
    asm.set_pkru(Pkru::ALL_ACCESS.bits());
    asm.li(Reg::S2, 0xC0DE);
    asm.store(Reg::S2, Reg::T0, 0, MemWidth::D); // no trap now
    asm.load(Reg::S3, Reg::T0, 0, MemWidth::D);
    asm.halt();
    let mut p = Program::new(asm.base(), asm.assemble().unwrap());
    p.add_segment(DataSegment::zeroed("shared_object", 0x8000, 4096, shared_key));

    for policy in WrpkruPolicy::all() {
        let mut config = SimConfig::with_policy(policy);
        config.fault_mode = FaultMode::TrapAndContinue;
        let mut core = Core::new(config, &p);
        let result = core.run();
        assert_eq!(result.exit, ExitReason::Halted, "{policy}");
        assert_eq!(result.stats.protection_faults, 1, "{policy}");
        assert_eq!(result.reg(Reg::S3), 0xC0DE, "{policy}");
    }
}
