//! # SpecMPK — speculative, secure MPK permission updates
//!
//! A from-scratch reproduction of *"SpecMPK: Efficient In-Process Isolation
//! with Speculative and Secure Permission Update Instruction"* (HPCA 2025):
//! a cycle-level out-of-order CPU simulator with Intel-MPK semantics, the
//! SpecMPK microarchitecture (PKRU renaming + Disabling Counters + PKRU
//! load/store checks), protection-scheme compilers (shadow stack, CPI),
//! SPEC-like workloads, and speculative-attack proofs of concept.
//!
//! This facade crate re-exports every subsystem:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`mpk`] | `specmpk-mpk` | pkeys, the PKRU register, permission checks |
//! | [`isa`] | `specmpk-isa` | instructions, assembler, programs |
//! | [`mem`] | `specmpk-mem` | page table, TLB, caches, DRAM |
//! | [`core_model`] | `specmpk-core` | `ROB_pkru`, Disabling Counters, the three WRPKRU policies |
//! | [`ooo`] | `specmpk-ooo` | the out-of-order core + reference interpreter |
//! | [`workloads`] | `specmpk-workloads` | IR, codegen, SS/CPI passes, SPEC-like suite |
//! | [`attacks`] | `specmpk-attacks` | Spectre-V1/BTI gadgets, flush+reload receiver |
//! | [`trace`] | `specmpk-trace` | pipeline trace sinks (Konata/O3PipeView), JSON stats |
//!
//! # Quick start
//!
//! Run a shadow-stack-protected workload under the three WRPKRU
//! microarchitectures and compare IPC:
//!
//! ```
//! use specmpk::core_model::WrpkruPolicy;
//! use specmpk::ooo::{Core, SimConfig};
//! use specmpk::workloads::standard_suite;
//!
//! let workload = &standard_suite()[0]; // 520.omnetpp_r (SS)
//! let program = workload.build_protected();
//!
//! let mut results = Vec::new();
//! for policy in WrpkruPolicy::all() {
//!     let mut config = SimConfig::with_policy(policy);
//!     config.max_instructions = 20_000; // keep the doctest fast
//!     let mut core = Core::new(config, &program);
//!     results.push((policy, core.run().stats.ipc()));
//! }
//! // Speculative WRPKRU beats the serialized baseline.
//! assert!(results[2].1 > results[0].1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use specmpk_attacks as attacks;
pub use specmpk_core as core_model;
pub use specmpk_isa as isa;
pub use specmpk_mem as mem;
pub use specmpk_mpk as mpk;
pub use specmpk_ooo as ooo;
pub use specmpk_trace as trace;
pub use specmpk_workloads as workloads;
