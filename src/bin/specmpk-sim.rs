//! `specmpk-sim` — command-line driver for the simulator.
//!
//! ```text
//! specmpk-sim --list
//! specmpk-sim --workload omnetpp --policy specmpk --instructions 500000
//! specmpk-sim --workload povray --policy all --protection nop
//! specmpk-sim --attack v1 --policy nonsecure
//! specmpk-sim --workload gcc --rob-pkru 2
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use specmpk::attacks::{
    run_attack, run_attack_observed, spectre_bti, spectre_v1, store_forward_overflow,
};
use specmpk::core_model::{registry, PolicyRef};
use specmpk::ooo::{Checkpoint, Core, FastForward, SimConfig, SimStats};
use specmpk::trace::{
    fmt_pc, progress_interval_from_env, Journal, Json, LeakObserver, NullSink, PipeTracer,
    ProgressReporter, Tee, TraceSink, DEFAULT_PROFILE_TOP_N, DEFAULT_PROGRESS_INTERVAL_MS,
};
use specmpk::workloads::{standard_suite, Protection, Workload};

struct Args {
    workload: Option<String>,
    attack: Option<String>,
    policy: String,
    protection: String,
    instructions: u64,
    rob_pkru: usize,
    fast_forward: u64,
    checkpoint: Option<PathBuf>,
    restore: Option<PathBuf>,
    list: bool,
    list_policies: bool,
    stats_json: Option<PathBuf>,
    trace: Option<PathBuf>,
    trace_interval: u64,
    journal: Option<PathBuf>,
    leak_ledger: Option<PathBuf>,
    progress: bool,
    profile: bool,
    profile_guest: Option<usize>,
}

fn usage() -> &'static str {
    "specmpk-sim — run SpecMPK workloads and attacks on the simulator

USAGE:
    specmpk-sim --list
    specmpk-sim --workload <NAME> [--policy serialized|nonsecure|specmpk|all]
                [--protection scheme|none|nop] [--instructions N] [--rob-pkru N]
    specmpk-sim --attack v1|bti|overflow [--policy ...]

OPTIONS:
    --list               list the 16 suite workloads and exit
    --list-policies      list the registered WRPKRU policies and exit
    --workload NAME      substring of a suite workload name (e.g. 'omnetpp_r')
    --attack KIND        run a PoC instead of a workload
    --policy P           a registered policy key, or 'all' (default: all)
    --protection S       'scheme' (the workload's own, default), 'none', 'nop'
    --instructions N     retired-instruction budget (default 500000)
    --rob-pkru N         ROB_pkru entries for SpecMPK (default 8)
    --fast-forward N     functionally execute N instructions first (warming
                         caches, TLB and branch predictor), then run the
                         detailed pipeline from that point with the usual
                         --instructions budget
    --checkpoint PATH    with --fast-forward: write the fast-forwarded
                         state as a byte-deterministic checkpoint file and
                         skip the detailed run
    --restore PATH       boot the detailed pipeline from a checkpoint file
                         instead of fast-forwarding (the workload and
                         protection must match the capture run)
    --stats-json PATH    write a JSON stats artifact for the run
    --trace PATH         write a Konata/O3PipeView pipeline trace; with
                         --policy all the policy name is appended to PATH
    --trace-interval N   sample IPC/stall time series every N cycles into
                         the JSON artifact (0 = off, default)
    --journal PATH       write a JSONL micro-event journal (squashes,
                         WRPKRU rename/retire, failed PKRU checks, head
                         stalls, replay bursts); with --policy all the
                         policy name is appended to PATH
    --leak-ledger PATH   write the speculative-access ledger as JSONL:
                         every pre-retire memory access with its pkey,
                         PKRU view, policy decision, retired/squashed
                         fate and surviving cache/TLB residue; with
                         --policy all the policy name is appended
    --progress           emit heartbeat telemetry lines on stderr
                         (SPECMPK_PROGRESS=<ms> sets the interval)
    --profile            time the pipeline stages on the host and emit a
                         host_profile stats section (SPECMPK_PROFILE=1
                         does the same)
    --profile-guest[=N]  attribute simulated cycles, rename stalls and
                         squashes/replays to guest PCs and profile every
                         WRPKRU site; emits a guest_profile stats section
                         with the top N PCs (default 32) and embeds the
                         workload's region map in the JSON artifact"
}

fn parse(mut argv: std::env::Args) -> Result<Args, String> {
    let _ = argv.next();
    let mut args = Args {
        workload: None,
        attack: None,
        policy: "all".into(),
        protection: "scheme".into(),
        instructions: 500_000,
        rob_pkru: 8,
        fast_forward: 0,
        checkpoint: None,
        restore: None,
        list: false,
        list_policies: false,
        stats_json: None,
        trace: None,
        trace_interval: 0,
        journal: None,
        leak_ledger: None,
        progress: false,
        profile: false,
        profile_guest: None,
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--list" => args.list = true,
            "--list-policies" => args.list_policies = true,
            "--workload" => args.workload = Some(value("--workload")?),
            "--attack" => args.attack = Some(value("--attack")?),
            "--policy" => args.policy = value("--policy")?,
            "--protection" => args.protection = value("--protection")?,
            "--instructions" => {
                args.instructions =
                    value("--instructions")?.parse().map_err(|e| format!("--instructions: {e}"))?;
            }
            "--rob-pkru" => {
                args.rob_pkru =
                    value("--rob-pkru")?.parse().map_err(|e| format!("--rob-pkru: {e}"))?;
            }
            "--fast-forward" => {
                args.fast_forward =
                    value("--fast-forward")?.parse().map_err(|e| format!("--fast-forward: {e}"))?;
            }
            "--checkpoint" => args.checkpoint = Some(value("--checkpoint")?.into()),
            "--restore" => args.restore = Some(value("--restore")?.into()),
            "--stats-json" => args.stats_json = Some(value("--stats-json")?.into()),
            "--trace" => args.trace = Some(value("--trace")?.into()),
            "--trace-interval" => {
                args.trace_interval = value("--trace-interval")?
                    .parse()
                    .map_err(|e| format!("--trace-interval: {e}"))?;
            }
            "--journal" => args.journal = Some(value("--journal")?.into()),
            "--leak-ledger" => args.leak_ledger = Some(value("--leak-ledger")?.into()),
            "--progress" => args.progress = true,
            "--profile" => args.profile = true,
            "--profile-guest" => args.profile_guest = Some(DEFAULT_PROFILE_TOP_N),
            "--help" | "-h" => return Err(usage().to_owned()),
            other if other.starts_with("--profile-guest=") => {
                let n: usize = other["--profile-guest=".len()..]
                    .parse()
                    .map_err(|e| format!("--profile-guest: {e}"))?;
                args.profile_guest = Some(n);
            }
            other => return Err(format!("unknown flag {other}\n\n{}", usage())),
        }
    }
    Ok(args)
}

fn policies(spec: &str) -> Result<Vec<PolicyRef>, String> {
    if spec == "all" {
        return Ok(registry::all().to_vec());
    }
    registry::by_name(spec).map(|p| vec![p]).ok_or_else(|| {
        format!("unknown policy '{spec}' (registered: {})", registry::keys().join(", "))
    })
}

fn print_stats(policy: PolicyRef, stats: &SimStats, baseline_ipc: f64) {
    println!(
        "{:<20} IPC {:>6.3}  ({:>+6.2}% vs first)  cycles {:>10}  WRPKRU/k {:>6.2}  \
         MPKI {:>5.2}  replays {:>5}",
        policy.to_string(),
        stats.ipc(),
        (stats.ipc() / baseline_ipc - 1.0) * 100.0,
        stats.cycles,
        stats.wrpkru_per_kilo_instr(),
        stats.mpki(),
        stats.load_replays,
    );
}

/// The per-policy artifact path: the given path as-is for a single-policy
/// run, `<path>.<policy key>` when several policies share one invocation.
fn per_policy_path(base: &Path, policy: PolicyRef, n_policies: usize) -> PathBuf {
    if n_policies == 1 {
        base.to_path_buf()
    } else {
        let mut name = base.as_os_str().to_owned();
        name.push(".");
        name.push(policy.key());
        PathBuf::from(name)
    }
}

/// Configures and runs one policy's core over `sink`, honoring the
/// observability flags, and hands the sink back for rendering.
fn run_one<S: TraceSink>(
    args: &Args,
    config: SimConfig,
    program: &specmpk::isa::Program,
    checkpoint: Option<&Checkpoint>,
    label: &str,
    sink: S,
) -> (specmpk::ooo::SimResult, S) {
    let mut core = match checkpoint {
        Some(cp) => Core::with_sink_from_checkpoint(config, program, cp, sink),
        None => Core::with_sink(config, program, sink),
    };
    core.set_sample_interval(args.trace_interval);
    if args.profile {
        core.set_profiling(true);
    }
    if let Some(n) = args.profile_guest {
        core.set_guest_profiling(true);
        core.set_guest_profile_top_n(n);
    }
    // --progress forces telemetry on (env default interval); the env
    // alone also enables it. Either way the heartbeat label names the
    // workload and policy rather than the policy-only default.
    let interval = progress_interval_from_env()
        .or_else(|| args.progress.then(|| Duration::from_millis(DEFAULT_PROGRESS_INTERVAL_MS)));
    if let Some(interval) = interval {
        core.set_progress(Some(ProgressReporter::new(label, interval)));
    }
    let result = core.run();
    (result, core.into_sink())
}

/// Runs one policy over `sink`, additionally teeing the event stream into
/// a [`LeakObserver`] written to `ledger_path` when `--leak-ledger` asked
/// for one. The base sink is handed back either way so the caller's
/// rendering path is oblivious to the wrap.
fn run_one_with_ledger<S: TraceSink>(
    args: &Args,
    config: SimConfig,
    program: &specmpk::isa::Program,
    checkpoint: Option<&Checkpoint>,
    label: &str,
    sink: S,
    ledger_path: Option<&Path>,
) -> Result<(specmpk::ooo::SimResult, S), String> {
    match ledger_path {
        None => Ok(run_one(args, config, program, checkpoint, label, sink)),
        Some(path) => {
            let tee = Tee::new(sink, LeakObserver::default());
            let (result, tee) = run_one(args, config, program, checkpoint, label, tee);
            tee.b.write_to(path).map_err(|e| format!("writing {}: {e}", path.display()))?;
            Ok((result, tee.a))
        }
    }
}

fn run_workload(args: &Args, workload: &Workload) -> Result<(), String> {
    let program = match args.protection.as_str() {
        "scheme" => workload.build_protected(),
        "none" => workload.build_unprotected(),
        "nop" => workload.build_nop_wrpkru(),
        other => return Err(format!("unknown protection '{other}'")),
    };
    println!(
        "workload {} | protection {} | budget {} instructions | ROB_pkru {}",
        workload.name(),
        args.protection,
        args.instructions,
        args.rob_pkru
    );
    // Fast-forward/restore is policy-independent (functional execution
    // plus policy-agnostic warmup timing), so one checkpoint boots the
    // detailed run of every selected policy.
    let checkpoint = if let Some(path) = &args.restore {
        if args.fast_forward > 0 {
            return Err("--restore and --fast-forward are mutually exclusive".into());
        }
        Some(Checkpoint::load(&SimConfig::default(), path)?)
    } else if args.fast_forward > 0 {
        let mut ff = FastForward::new(&SimConfig::default(), &program);
        if let Some(exit) = ff.step_n(args.fast_forward) {
            return Err(format!(
                "fast-forward ended after {} instructions ({exit:?}); \
                 nothing left for the detailed window",
                ff.executed()
            ));
        }
        println!("fast-forwarded {} instructions (functional warmup)", ff.executed());
        Some(Checkpoint::capture(ff))
    } else {
        None
    };
    if let Some(path) = &args.checkpoint {
        let cp = checkpoint
            .as_ref()
            .ok_or("--checkpoint needs --fast-forward N to produce a state to save")?;
        cp.save(path)?;
        println!("checkpoint written to {} (at instruction {})", path.display(), cp.executed);
        return Ok(());
    }
    let mut baseline = None;
    let mut per_policy = Json::object();
    let selected = policies(&args.policy)?;
    for &policy in &selected {
        let mut config = SimConfig::with_policy(policy).with_rob_pkru_size(args.rob_pkru);
        config.max_instructions = args.instructions;
        let label = format!("{}/{}", workload.name(), policy.key());
        let write = |path: &Path, out: std::io::Result<()>| {
            out.map_err(|e| format!("writing {}: {e}", path.display()))
        };
        let ledger_path =
            args.leak_ledger.as_deref().map(|base| per_policy_path(base, policy, selected.len()));
        let ledger_path = ledger_path.as_deref();
        let result = match (&args.trace, &args.journal) {
            (Some(trace), Some(journal)) => {
                let sink = Tee::new(PipeTracer::default(), Journal::default());
                let (result, sink) = run_one_with_ledger(
                    args,
                    config,
                    &program,
                    checkpoint.as_ref(),
                    &label,
                    sink,
                    ledger_path,
                )?;
                let path = per_policy_path(trace, policy, selected.len());
                write(&path, sink.a.write_to(&path))?;
                let path = per_policy_path(journal, policy, selected.len());
                write(&path, sink.b.write_to(&path))?;
                result
            }
            (Some(trace), None) => {
                let (result, sink) = run_one_with_ledger(
                    args,
                    config,
                    &program,
                    checkpoint.as_ref(),
                    &label,
                    PipeTracer::default(),
                    ledger_path,
                )?;
                let path = per_policy_path(trace, policy, selected.len());
                write(&path, sink.write_to(&path))?;
                result
            }
            (None, Some(journal)) => {
                let (result, sink) = run_one_with_ledger(
                    args,
                    config,
                    &program,
                    checkpoint.as_ref(),
                    &label,
                    Journal::default(),
                    ledger_path,
                )?;
                let path = per_policy_path(journal, policy, selected.len());
                write(&path, sink.write_to(&path))?;
                result
            }
            (None, None) => {
                run_one_with_ledger(
                    args,
                    config,
                    &program,
                    checkpoint.as_ref(),
                    &label,
                    NullSink,
                    ledger_path,
                )?
                .0
            }
        };
        let base = *baseline.get_or_insert(result.stats.ipc());
        print_stats(policy, &result.stats, base);
        per_policy.set(policy.key(), result.stats.to_json());
    }
    if let Some(path) = &args.stats_json {
        let mut artifact = Json::object()
            .with("workload", workload.name())
            .with("protection", args.protection.as_str())
            .with("instructions", args.instructions)
            .with("rob_pkru", args.rob_pkru as u64)
            .with("policies", per_policy);
        if let Some(cp) = &checkpoint {
            // Recorded only for sampled runs so default artifacts stay
            // byte-stable.
            artifact.set("fast_forwarded", cp.executed);
        }
        if args.profile_guest.is_some() {
            // The region side map lets `specmpk-report profile` fold the
            // per-PC tables into named workload regions. Emitted only
            // under --profile-guest so default artifacts stay byte-stable.
            let regions = match args.protection.as_str() {
                // The nop pass rewrites WRPKRUs in place, so the
                // protected layout's addresses still apply.
                "scheme" | "nop" => workload.build_protected_with_regions().1,
                _ => workload.build_with_regions(Protection::None).1,
            };
            let rows: Vec<Json> = regions
                .iter()
                .map(|r| {
                    Json::object()
                        .with("name", r.name.clone())
                        .with("start", fmt_pc(r.start))
                        .with("end", fmt_pc(r.end))
                })
                .collect();
            artifact.set("regions", rows);
        }
        std::fs::write(path, artifact.dump())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    Ok(())
}

fn run_poc(args: &Args, kind: &str) -> Result<(), String> {
    let attack = match kind {
        "v1" => spectre_v1(101, 72),
        "bti" => spectre_bti(101, 72),
        "overflow" => store_forward_overflow(13),
        other => return Err(format!("unknown attack '{other}' (v1|bti|overflow)")),
    };
    println!("attack {kind} | secret probe index {}", attack.secret_index());
    let selected = policies(&args.policy)?;
    for &policy in &selected {
        if let Some(base) = &args.leak_ledger {
            // With the ledger attached, also report the microarchitectural
            // evidence next to the receiver's cache-timing verdict.
            let (outcome, ledger) = run_attack_observed(&attack, policy);
            let path = per_policy_path(base, policy, selected.len());
            ledger.write_to(&path).map_err(|e| format!("writing {}: {e}", path.display()))?;
            let c = ledger.counts();
            println!(
                "{:<20} leaked: {:<5}  hot: {:?}  ledger: {} accesses, {} squashed, \
                 residue {}/{} line/tlb, witness {}",
                policy.to_string(),
                outcome.leaked(attack.secret_index()),
                outcome.hot_indices(),
                c.accesses,
                c.squashed,
                c.residue_lines,
                c.residue_tlb,
                if ledger.witness_chain(attack.secret_pkey().index() as u8).is_some() {
                    "yes"
                } else {
                    "no"
                },
            );
        } else {
            let outcome = run_attack(&attack, policy);
            println!(
                "{:<20} leaked: {:<5}  hot: {:?}",
                policy.to_string(),
                outcome.leaked(attack.secret_index()),
                outcome.hot_indices()
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse(std::env::args()) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.list {
        for w in standard_suite() {
            let scheme = match w.scheme {
                specmpk::workloads::Scheme::ShadowStack => Protection::ShadowStack,
                specmpk::workloads::Scheme::Cpi => Protection::Cpi,
            };
            println!("{:<24} {:?}", w.name(), scheme);
        }
        return ExitCode::SUCCESS;
    }
    if args.list_policies {
        for policy in registry::all() {
            println!("{:<12} {}", policy.key(), policy);
        }
        return ExitCode::SUCCESS;
    }
    let outcome = if let Some(kind) = &args.attack {
        run_poc(&args, kind)
    } else if let Some(needle) = &args.workload {
        match standard_suite().into_iter().find(|w| w.name().contains(needle.as_str())) {
            Some(w) => run_workload(&args, &w),
            None => Err(format!("no workload matching '{needle}' (try --list)")),
        }
    } else {
        Err(usage().to_owned())
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
